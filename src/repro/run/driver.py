"""The batched ensemble driver and the single-core factory.

``EnsembleDriver`` owns N members of one scenario and steps them all
through **one** engine :class:`~repro.fv3.dyncore.DynamicalCore`. Each
member's prognostic state lives in its own arrays; to advance a member
the driver copies its state into the engine's arrays (``np.copyto``,
preserving array identity), steps, and copies back. Because every
compiled program is bound to the engine's arrays, the per-member fixed
costs are paid exactly once for the whole ensemble:

- the cubed-sphere geometry is built once;
- the whole stencil suite is orchestrated and compiled once (the
  content-hash compile cache sees one engine, so the batched run's
  compile misses equal a single run's, not N times them);
- scratch arrays cycle through the process-wide
  :class:`~repro.runtime.BufferPool` instead of being allocated per
  member.

This swap is bit-exact by the same argument the PR-4 rollback/retry
loop rests on: a remapping step re-advanced from a restored
:class:`~repro.resilience.Snapshot` (arrays + time + step) finishes
bit-identical, i.e. the engine holds no live cross-step state outside
the swapped fields. The ensemble determinism tests pin this down.

Seeding contract: member k's perturbation stream is
``np.random.SeedSequence(root_seed, spawn_key=(k,))`` — a pure function
of (root seed, member id), so member k is bit-identical whether it runs
alone or inside any batch. Member 0 is the unperturbed control: a
``members=1`` run reproduces the pre-ensemble single-run numerics
exactly.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.initial import RankFields
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.obs import tracer as _obs
from repro.resilience import ResilienceConfig, Snapshot, load_checkpoint, \
    save_checkpoint
from repro.run import metrics as _metrics
from repro.run.results import MemberResult, RunResult
from repro.runtime import compile_cache as _compile_cache
from repro.runtime import ranks as _ranks
from repro.runtime.pool import get_pool
from repro.scenarios import Scenario, get_scenario

__all__ = ["EnsembleDriver", "build_core", "build_grids", "member_rng",
           "resolve_executor"]

_TRACER = _obs.get_tracer()

#: accepted executor spellings for the facade's ``executor=`` argument
#: ("processes" is dispatched by :func:`repro.run.run` before the driver
#: is built — it launches whole worker processes, not engine threads)
_EXECUTOR_NAMES = ("sequential", "threads", "processes")

#: the swapped per-member prognostic fields (tracers handled separately)
_STATE_FIELDS = ("u", "v", "w", "pt", "delp", "delz")

#: sentinel distinguishing "no rng argument" from an explicit ``None``
#: (None is meaningful: it requests the unperturbed control state)
_UNSET_RNG = object()


def resolve_executor(
    executor: Union[None, str, _ranks.RankExecutor] = None,
    workers: Optional[int] = None,
    total_ranks: int = 6,
) -> Tuple[Optional[_ranks.RankExecutor], bool]:
    """Resolve the facade's ``executor=`` argument.

    Returns ``(executor_or_None, owned)`` — ``None`` defers to the
    process default (``REPRO_RANKS``); ``owned`` means the caller is
    responsible for ``shutdown()``.
    """
    if executor is None:
        return None, False
    if isinstance(executor, _ranks.RankExecutor):
        return executor, False
    name = str(executor).strip().lower()
    if name == "sequential":
        return _ranks.RankExecutor(1), True
    if name == "threads":
        return _ranks.RankExecutor(workers or total_ranks), True
    if name == "processes":
        raise ValueError(
            "executor='processes' launches whole worker processes and is "
            "only supported through repro.run.run(...), not through an "
            "engine-level driver"
        )
    raise ValueError(
        f"unknown executor {executor!r}; expected one of "
        f"{', '.join(map(repr, _EXECUTOR_NAMES))}, a RankExecutor, "
        f"or None"
    )


def member_rng(root_seed: int, member: int) -> Optional[np.random.Generator]:
    """The perturbation stream of one member (None for the control).

    Built from ``SeedSequence(root_seed, spawn_key=(member,))`` so the
    stream depends only on (root seed, member id) — never on batch
    size or on which other members run.
    """
    if member == 0:
        return None
    return np.random.default_rng(
        np.random.SeedSequence(root_seed, spawn_key=(member,))
    )


def build_grids(config: DynamicalCoreConfig,
                n_halo: Optional[int] = None) -> List[CubedSphereGrid]:
    """Build the per-rank geometry once (shared by ensemble members)."""
    from repro.fv3 import constants

    h = constants.N_HALO if n_halo is None else n_halo
    partitioner = CubedSpherePartitioner(config.npx, config.layout)
    return [
        CubedSphereGrid.build(partitioner, rank, n_halo=h)
        for rank in range(partitioner.total_ranks)
    ]


def build_core(
    scenario: Union[str, Scenario],
    config: Optional[DynamicalCoreConfig] = None,
    *,
    member: int = 0,
    seed: int = 0,
    executor: Union[None, str, _ranks.RankExecutor] = None,
    workers: Optional[int] = None,
    resilience: Optional[ResilienceConfig] = None,
    comm_latency: Optional[float] = None,
    max_polls: Optional[int] = None,
    grids: Optional[List[CubedSphereGrid]] = None,
    comm=None,
) -> DynamicalCore:
    """The single source of truth for wiring one member's ranks.

    Examples and benchmarks that used to hand-assemble
    ``DynamicalCoreConfig → DynamicalCore → comm knobs`` call this (or
    :func:`repro.run.run` above it) instead. ``comm_latency`` and
    ``max_polls`` configure the simulated transport exactly like the
    scaling benchmark needs.
    """
    scen = get_scenario(scenario)
    cfg = config if config is not None else scen.default_config()
    ex, _ = resolve_executor(executor, workers, cfg.total_ranks)
    core = DynamicalCore(
        cfg,
        init=scen.initializer(member_rng(seed, member)),
        resilience=resilience,
        executor=ex,
        grids=grids,
        comm=comm,
    )
    if comm_latency is not None:
        core.halo.comm.latency = comm_latency
    if max_polls is not None:
        core.halo.comm.max_polls = max_polls
    return core


def _member_resilience(
    base: Optional[ResilienceConfig], member: int
) -> Optional[ResilienceConfig]:
    """Per-member resilience: periodic checkpoints get their own
    subdirectory so members never overwrite each other's files."""
    if base is None or not base.checkpoint_dir:
        return base
    return dataclasses.replace(
        base,
        checkpoint_dir=str(
            pathlib.Path(base.checkpoint_dir) / f"member{member:03d}"
        ),
    )


@dataclasses.dataclass
class _Member:
    """One member's canonical state (the engine holds only a working
    copy while the member is being stepped)."""

    member: int
    states: List[RankFields]
    resilience: Optional[ResilienceConfig]
    time: float = 0.0
    step_count: int = 0
    mass0: float = 0.0
    tracer0: Optional[float] = None


def _copy_states(src: Sequence[RankFields], dst: Sequence[RankFields]):
    for s, d in zip(src, dst):
        for f in _STATE_FIELDS:
            np.copyto(getattr(d, f), getattr(s, f))
        for ts, td in zip(s.tracers, d.tracers):
            np.copyto(td, ts)


def _states_from_snapshot(snapshot) -> List[RankFields]:
    """Materialize fresh per-rank :class:`RankFields` from an in-memory
    :class:`~repro.resilience.Snapshot` (used by the serving layer's
    checkpoint-warmed cache — no scenario builder math is re-run)."""
    return [
        RankFields(
            **{name: arr.copy() for name, arr in fields.items()},
            tracers=[t.copy() for t in tracers],
        )
        for fields, tracers in zip(snapshot.arrays, snapshot.tracers)
    ]


class EnsembleDriver:
    """N members of one scenario batched through one engine core.

    ``members`` is either a count (ids ``0..N-1``, 0 = control) or an
    explicit sequence of member ids — ``members=(3,)`` runs member 3
    standalone with exactly the state it would have inside a batch.

    Stepping is *step-major*: every member advances step s before any
    member starts s+1, so all members flow through the engine's hot
    compiled programs and pooled buffers together.

    Membership is dynamic: :meth:`add_member` / :meth:`remove_member`
    let a long-lived driver (the serving layer keeps one warm per
    scenario+config) swap request states through the already-compiled
    engine without paying geometry or compilation again. Pass a warm
    ``engine=`` to adopt an existing core instead of building one.
    """

    def __init__(
        self,
        scenario: Union[str, Scenario],
        config: Optional[DynamicalCoreConfig] = None,
        *,
        members: Union[int, Sequence[int]] = 1,
        seed: int = 0,
        executor: Union[None, str, _ranks.RankExecutor] = None,
        workers: Optional[int] = None,
        resilience: Optional[ResilienceConfig] = None,
        comm_latency: Optional[float] = None,
        max_polls: Optional[int] = None,
        diagnostics: bool = True,
        engine=None,
    ):
        self.scenario = get_scenario(scenario)
        self.config = (
            config if config is not None else self.scenario.default_config()
        )
        if isinstance(members, (int, np.integer)):
            if members < 1:
                raise ValueError("members must be >= 1")
            member_ids: Tuple[int, ...] = tuple(range(int(members)))
        else:
            member_ids = tuple(int(m) for m in members)
            if not member_ids and engine is None:
                raise ValueError("members sequence must not be empty")
            if len(set(member_ids)) != len(member_ids):
                raise ValueError("duplicate member ids")
        self.seed = int(seed)
        self.diagnostics = diagnostics
        self._base_resilience = resilience
        if engine is not None:
            # adopt a warm core: geometry + compiled suite already paid
            if engine.config != self.config:
                raise ValueError(
                    "warm engine was built for a different config "
                    f"({engine.config} != {self.config})"
                )
            self.engine = engine
            self.executor = engine.executor
            self._owns_executor = False
        else:
            self.executor, self._owns_executor = resolve_executor(
                executor, workers, self.config.total_ranks
            )
            # one engine core: its compiled suite serves every member
            with _TRACER.span("ensemble.build_engine"):
                self.engine = build_core(
                    self.scenario,
                    self.config,
                    member=0,
                    seed=self.seed,
                    executor=self.executor,
                    resilience=resilience,
                    comm_latency=comm_latency,
                    max_polls=max_polls,
                )
        self._grid_builds = len(self.engine.grids)
        self._grid_builds_avoided = (
            max(0, len(member_ids) - 1) * self._grid_builds
        )
        self.members: Dict[int, _Member] = {}
        self.history: Dict[int, List[Dict[str, float]]] = {}
        for m in member_ids:
            self.add_member(m)
        self.steps_taken = 0

    @property
    def member_ids(self) -> Tuple[int, ...]:
        """Current member ids, in insertion order."""
        return tuple(self.members)

    # ------------------------------------------------------------------
    # dynamic membership (the serving layer's request slots)
    # ------------------------------------------------------------------
    def add_member(
        self,
        member: int,
        *,
        snapshot=None,
        rng=_UNSET_RNG,
        mass0: Optional[float] = None,
        tracer0: Optional[float] = None,
    ) -> None:
        """Install one member: built fresh from the scenario (seeded by
        this driver's root seed), or — with ``snapshot=`` — materialized
        from a captured :class:`~repro.resilience.Snapshot`, adopting
        its time/step and skipping the builder entirely (pass the
        original run's ``mass0``/``tracer0`` so conservation drift stays
        anchored to the true initial state).

        ``rng`` overrides the perturbation stream (None = unperturbed
        control). The serving layer uses this to install request states
        under service-assigned slot ids while keeping the state a pure
        function of the *request's* (seed, member) — the slot id never
        feeds the numerics."""
        member = int(member)
        if member in self.members:
            raise ValueError(f"member {member} already loaded")
        with _TRACER.span(f"ensemble.build[{member}]"):
            if snapshot is not None:
                states = _states_from_snapshot(snapshot)
                time0, step0 = snapshot.time, snapshot.step
            else:
                if rng is _UNSET_RNG:
                    rng = member_rng(self.seed, member)
                states = [
                    self.scenario.build_state(grid, self.config, rng)
                    for grid in self.engine.grids
                ]
                time0, step0 = 0.0, 0
            self.members[member] = _Member(
                member=member,
                states=states,
                resilience=_member_resilience(self._base_resilience, member),
                time=time0,
                step_count=step0,
            )
        # conservation baselines for the driver-level reference checks
        rec = self._activate(member)
        rec.mass0 = (
            mass0 if mass0 is not None
            else self.engine.global_integral("delp")
        )
        if tracer0 is not None:
            rec.tracer0 = tracer0
        else:
            rec.tracer0 = (
                self.engine.tracer_integral(0)
                if self.config.n_tracers else None
            )
        self.history[member] = []

    def remove_member(self, member: int) -> _Member:
        """Drop one member (its arrays become collectible); returns the
        removed record so a caller may still snapshot it."""
        self.history.pop(member, None)
        try:
            return self.members.pop(member)
        except KeyError:
            raise KeyError(f"no member {member} loaded") from None

    def snapshot_member(self, member: int) -> Snapshot:
        """A bit-exact in-memory snapshot of one member's canonical
        state (independent of the engine's working copy)."""
        rec = self.members[member]
        return Snapshot.capture(rec.states, rec.time, rec.step_count)

    # ------------------------------------------------------------------
    # state swap
    # ------------------------------------------------------------------
    def _activate(self, member: int) -> _Member:
        """Load one member's state into the engine's arrays."""
        rec = self.members[member]
        _copy_states(rec.states, self.engine.states)
        self.engine.time = rec.time
        self.engine.step_count = rec.step_count
        self.engine.resilience = rec.resilience
        return rec

    def _store(self, member: int) -> None:
        """Copy the engine's (just stepped) state back to the member."""
        rec = self.members[member]
        _copy_states(self.engine.states, rec.states)
        rec.time = self.engine.time
        rec.step_count = self.engine.step_count

    # ------------------------------------------------------------------
    def step(self, n: int = 1) -> None:
        """Advance every member ``n`` physics steps, step-major."""
        for _ in range(n):
            with _TRACER.span("ensemble.step"):
                self.step_selected(self.member_ids)
            self.steps_taken += 1

    def step_selected(self, members: Sequence[int], n: int = 1) -> None:
        """Advance only ``members`` by ``n`` steps, step-major.

        The serving layer batches requests with different lead times
        through one warm driver: each sweep advances exactly the
        requests that still have steps left (finished or cancelled ones
        drop out), without touching the driver-global ``steps_taken``
        that the classic whole-ensemble path reports."""
        for _ in range(n):
            for m in members:
                with _TRACER.span(f"member[{m}]"):
                    self._activate(m)
                    self.engine.step_dynamics()
                    if self.diagnostics:
                        self.history[m].append(self._diagnose(m))
                    self._store(m)

    def member_report(self, member: int) -> Dict[str, object]:
        """One member's current summary + conservation drift (loads the
        member into the engine; used by the serving response path)."""
        rec = self._activate(member)
        report: Dict[str, object] = {
            "member": member,
            "step": rec.step_count,
            "time": rec.time,
            "summary": dict(self.engine.state_summary()),
            "mass_drift": self._mass_drift_loaded(member),
        }
        drift = self._tracer_drift_loaded(member)
        if drift is not None:
            report["tracer_drift"] = drift
        return report

    def _diagnose(self, member: int) -> Dict[str, float]:
        """Summarize the loaded member from the engine's state."""
        entry = dict(self.engine.state_summary())
        entry["step"] = self.engine.step_count
        entry["mass_drift"] = self._mass_drift_loaded(member)
        drift = self._tracer_drift_loaded(member)
        if drift is not None:
            entry["tracer_drift"] = drift
        return entry

    def _mass_drift_loaded(self, member: int) -> float:
        mass0 = self.members[member].mass0
        return (self.engine.global_integral("delp") - mass0) / mass0

    def _tracer_drift_loaded(self, member: int) -> Optional[float]:
        t0 = self.members[member].tracer0
        if not t0:
            return None
        return (self.engine.tracer_integral(0) - t0) / t0

    def mass_drift(self, member: int) -> float:
        self._activate(member)
        return self._mass_drift_loaded(member)

    def tracer_drift(self, member: int) -> Optional[float]:
        self._activate(member)
        return self._tracer_drift_loaded(member)

    # ------------------------------------------------------------------
    def reference_check(self, member: Optional[int] = None
                        ) -> Dict[int, List[str]]:
        """Scenario checks plus conservation tolerances, per member."""
        targets = self.member_ids if member is None else (member,)
        out: Dict[int, List[str]] = {}
        for m in targets:
            self._activate(m)
            violations = self.scenario.reference_check(
                self.engine, self.steps_taken
            )
            tol = self.scenario.mass_drift_tol
            if tol is not None:
                drift = self._mass_drift_loaded(m)
                if abs(drift) > tol:
                    violations.append(
                        f"mass drift {drift:+.2e} exceeds {tol:.0e}"
                    )
            ttol = self.scenario.tracer_drift_tol
            tdrift = self._tracer_drift_loaded(m)
            if ttol is not None and tdrift is not None:
                if abs(tdrift) > ttol:
                    violations.append(
                        f"tracer mass drift {tdrift:+.2e} exceeds "
                        f"{ttol:.0e}"
                    )
            out[m] = violations
        return out

    # ------------------------------------------------------------------
    # per-member checkpoint/restart (repro.resilience underneath)
    # ------------------------------------------------------------------
    def checkpoint_member(self, member: int, path=None) -> pathlib.Path:
        """Write one member's versioned on-disk checkpoint."""
        rec = self.members[member]
        if path is None:
            res = rec.resilience
            if res is None or not res.checkpoint_dir:
                raise ValueError(
                    "no path given and no checkpoint_dir configured"
                )
            path = (
                pathlib.Path(res.checkpoint_dir)
                / f"ckpt_step{rec.step_count:06d}.npz"
            )
        return save_checkpoint(
            path, rec.states, rec.time, rec.step_count,
            extra_meta={
                "npx": self.config.npx, "npz": self.config.npz,
                "layout": self.config.layout, "member": member,
                "scenario": self.scenario.name,
            },
        )

    def restore_member(self, member: int, path) -> Dict[str, object]:
        """Restore one member from a checkpoint file (the other
        members are untouched)."""
        rec = self.members[member]
        meta = load_checkpoint(path, rec.states)
        rec.time = float(meta["time"])
        rec.step_count = int(meta["step"])
        return meta

    # ------------------------------------------------------------------
    def run(self, steps: int, check: bool = True) -> RunResult:
        """Step all members and assemble the structured result."""
        cache0 = _compile_cache.stats()
        pool0 = get_pool().stats()
        t0 = time.perf_counter()
        with _TRACER.span("ensemble.run"):
            self.step(steps)
        seconds = time.perf_counter() - t0
        cache1 = _compile_cache.stats()
        pool1 = get_pool().stats()
        amortization = {
            "members": len(self.member_ids),
            "grid_builds": self._grid_builds,
            "grid_builds_avoided": self._grid_builds_avoided,
            "compile_hits": cache1["hits"] - cache0["hits"],
            "compile_misses": cache1["misses"] - cache0["misses"],
            "pool_reuse_hits": pool1["reuse_hits"] - pool0["reuse_hits"],
        }
        _metrics.record_run(
            members=len(self.member_ids),
            member_steps=steps * len(self.member_ids),
            seconds=seconds,
            grid_builds=self._grid_builds,
            grid_builds_avoided=self._grid_builds_avoided,
            compile_hits=amortization["compile_hits"],
            compile_misses=amortization["compile_misses"],
            pool_reuse_hits=amortization["pool_reuse_hits"],
        )
        checks = (
            self.reference_check() if check
            else {m: [] for m in self.member_ids}
        )
        members = []
        for m in self.member_ids:
            self._activate(m)
            members.append(MemberResult(
                member=m,
                steps=self.steps_taken,
                summary=self.engine.state_summary(),
                mass_drift=self._mass_drift_loaded(m),
                tracer_drift=self._tracer_drift_loaded(m),
                check_violations=checks[m],
                history=list(self.history[m]),
                states=self.members[m].states,
            ))
        return RunResult(
            scenario=self.scenario.name,
            config=self.config,
            steps=self.steps_taken,
            seed=self.seed,
            members=members,
            seconds=seconds,
            executor=repr(self.engine.executor),
            amortization=amortization,
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    def close(self, strict: bool = False) -> None:
        """Drain the engine's halo machinery; shut down an owned
        executor (member states stay inspectable afterwards)."""
        self.engine.finalize(strict=strict)
        if self._owns_executor and self.executor is not None:
            self.executor.shutdown()

    def __enter__(self) -> "EnsembleDriver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
