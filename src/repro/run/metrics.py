"""Ensemble amortization accounting for the obs report footer.

The whole point of batching members through one driver is that the
second member stops paying the first member's fixed costs: compiled
programs come out of the content-hash cache, scratch arrays out of the
buffer pool, and the cubed-sphere geometry is built once and shared.
The driver records, per ``run()``, the compile-cache and pool deltas
observed *during* the run plus the grid builds it avoided; the obs
report footer (``ensemble:`` line) and :func:`summary` expose the
accumulated totals.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["record_run", "reset_metrics", "summary"]

_LOCK = threading.Lock()
_METRICS: Dict[str, float] = {
    "runs": 0,
    "members": 0,
    "member_steps": 0,
    "seconds": 0.0,
    "grid_builds": 0,
    "grid_builds_avoided": 0,
    "compile_hits": 0,
    "compile_misses": 0,
    "pool_reuse_hits": 0,
}


def record_run(
    members: int,
    member_steps: int,
    seconds: float,
    grid_builds: int,
    grid_builds_avoided: int,
    compile_hits: int,
    compile_misses: int,
    pool_reuse_hits: int,
) -> None:
    """Accumulate one driver run's amortization counters."""
    with _LOCK:
        _METRICS["runs"] += 1
        _METRICS["members"] += members
        _METRICS["member_steps"] += member_steps
        _METRICS["seconds"] += seconds
        _METRICS["grid_builds"] += grid_builds
        _METRICS["grid_builds_avoided"] += grid_builds_avoided
        _METRICS["compile_hits"] += compile_hits
        _METRICS["compile_misses"] += compile_misses
        _METRICS["pool_reuse_hits"] += pool_reuse_hits


def reset_metrics() -> None:
    with _LOCK:
        for key in _METRICS:
            _METRICS[key] = 0


def summary() -> Dict[str, object]:
    """Accumulated ensemble counters (plus the compile amortization
    rate: hits / (hits + misses) observed during driver runs)."""
    with _LOCK:
        out: Dict[str, object] = dict(_METRICS)
    compiled = out["compile_hits"] + out["compile_misses"]
    out["compile_amortization"] = (
        out["compile_hits"] / compiled if compiled else None
    )
    return out
