"""repro.run — the unified experiment facade.

One public way to launch the model, single runs and ensembles alike::

    from repro.run import run

    result = run("baroclinic_wave", steps=4)             # single run
    result = run("baroclinic_wave", steps=4, members=8,  # ensemble
                 seed=42, executor="threads")
    print(result.describe())

``run`` resolves the scenario through :mod:`repro.scenarios`, builds
**one** engine :class:`~repro.fv3.dyncore.DynamicalCore`, and steps
every member's state through it step-major — the geometry build, the
orchestrated stencil suite and its compiled programs, and the pooled
scratch buffers are all paid once for the whole ensemble (see
``docs/ensembles.md``). It then runs the scenario's reference checks
and returns a structured :class:`RunResult`.

The rank executor is one argument: ``executor="sequential"``,
``"threads"`` (with ``workers=N``), ``"processes"`` (worker
*processes* over a shared-memory mailbox — see ``docs/scaling.md``
and :mod:`repro.runtime.procs`), or a
:class:`~repro.runtime.RankExecutor` instance. Per-member
checkpoint/restart and chaos/guard policies ride through
``resilience=`` (:class:`~repro.resilience.ResilienceConfig`), with
periodic checkpoints landing in per-member subdirectories.

Lower-level entry points for benchmarks and tests:
:func:`build_core` (one member's fully wired core — the single source
of truth for rank wiring) and :class:`EnsembleDriver` (stepwise
control, per-member checkpointing, reference checks).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.run import metrics
from repro.run.driver import (
    EnsembleDriver,
    build_core,
    build_grids,
    member_rng,
    resolve_executor,
)
from repro.run.results import MemberResult, RunResult

__all__ = [
    "EnsembleDriver",
    "MemberResult",
    "RunResult",
    "build_core",
    "build_grids",
    "member_rng",
    "metrics",
    "resolve_executor",
    "run",
]


def run(
    scenario,
    config=None,
    steps: int = 1,
    *,
    members: Union[int, Sequence[int]] = 1,
    seed: int = 0,
    executor=None,
    workers: Optional[int] = None,
    resilience=None,
    comm_latency: Optional[float] = None,
    max_polls: Optional[int] = None,
    diagnostics: bool = True,
    check: bool = True,
) -> RunResult:
    """Run a scenario for ``steps`` physics steps with ``members``
    ensemble members; returns a structured :class:`RunResult`.

    Args:
        scenario: registered scenario name or a
            :class:`~repro.scenarios.Scenario`.
        config: :class:`~repro.fv3.config.DynamicalCoreConfig`
            (default: the scenario's suggested configuration).
        steps: physics steps to advance every member.
        members: member count (ids ``0..N-1``; 0 is the unperturbed
            control) or an explicit id sequence — ``members=(k,)``
            reproduces batch member k standalone, bit-identically.
        seed: root seed of the per-member ``SeedSequence`` streams.
        executor: ``None`` (process default), ``"sequential"``,
            ``"threads"``, ``"processes"`` (worker processes speaking
            the halo protocol over shared memory; bit-identical to the
            other executors, but ``resilience=`` is rejected — see
            ``docs/scaling.md``), a
            :class:`~repro.runtime.RankExecutor`, or a
            :class:`~repro.runtime.procs.ProcessRankExecutor`.
        workers: thread cap for ``executor="threads"``; worker-process
            count for ``executor="processes"`` (default: one per
            rank).
        resilience: optional
            :class:`~repro.resilience.ResilienceConfig` applied to
            every member (periodic checkpoints go to per-member
            subdirectories).
        comm_latency: simulated per-message network latency [s].
        max_polls: receive absence budget of the simulated transport.
        diagnostics: record per-step summaries on each member's
            ``history``.
        check: run the scenario's reference checks after stepping.
    """
    # lazy check: a ProcessRankExecutor instance implies repro.runtime
    # .procs is already imported, so the module never loads otherwise
    import sys as _sys

    _procs = _sys.modules.get("repro.runtime.procs")
    is_proc_executor = (
        _procs is not None
        and isinstance(executor, _procs.ProcessRankExecutor)
    )
    if is_proc_executor or (
        isinstance(executor, str)
        and executor.strip().lower() == "processes"
    ):
        from repro.run.procrun import run_processes

        return run_processes(
            scenario,
            config,
            steps,
            members=members,
            seed=seed,
            executor=executor if is_proc_executor else None,
            workers=workers,
            resilience=resilience,
            comm_latency=comm_latency,
            max_polls=max_polls,
            diagnostics=diagnostics,
            check=check,
        )
    driver = EnsembleDriver(
        scenario,
        config,
        members=members,
        seed=seed,
        executor=executor,
        workers=workers,
        resilience=resilience,
        comm_latency=comm_latency,
        max_polls=max_polls,
        diagnostics=diagnostics,
    )
    try:
        return driver.run(steps, check=check)
    finally:
        driver.close()
