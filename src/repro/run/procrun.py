"""``repro.run.run(..., executor="processes")`` — the parent side.

Launches a :class:`~repro.runtime.procs.ProcessRankExecutor` fleet over
the scenario, then reassembles a :class:`~repro.run.results.RunResult`
that is **bit-identical** to the sequential and threaded executors':

- The parent builds the same :class:`~repro.run.driver.EnsembleDriver`
  a sequential run would (engine core, member states, conservation
  baselines) but never steps it. Workers replay the identical builders,
  step only their own ranks, and ship the stepped blocks back; the
  parent copies them into its member records and computes the final
  summaries, drifts and reference checks through the very same engine
  code path a sequential run uses.
- Per-step diagnostics are folded from per-rank *partials*: each worker
  reports the exact per-rank summand of the engine's conservation folds
  (``global_integral`` et al.), and the parent re-runs the fold in rank
  order starting from 0.0 — the identical left-to-right float addition
  sequence, hence identical history entries.
- Worker-side conservation baselines are cross-checked against the
  parent's (exact equality): a worker whose replica diverged from the
  parent's member build fails the run loudly instead of silently
  producing a different ensemble.

``resilience=`` is rejected here: chaos occurrence counters and
rollback snapshots are per-process state, and splitting them across
workers would silently change which occurrences fire relative to the
single-process schedule.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import tracer as _obs
from repro.run import metrics as _metrics
from repro.run.driver import _STATE_FIELDS, EnsembleDriver
from repro.run.results import MemberResult, RunResult
from repro.runtime import compile_cache as _compile_cache
from repro.runtime.pool import get_pool
from repro.runtime.procs import ProcessRankExecutor, WorkerSpec

__all__ = ["run_processes"]

#: default receive absence budget under processes (seconds = polls *
#: 0.05): sibling workers may spend seconds in first-step compilation
#: while our receives are already posted, so the threaded default (0.4s)
#: is far too twitchy for a cold fleet
_DEFAULT_MAX_POLLS = 1200


def _transport_sizing(engine, config) -> Tuple[int, int]:
    """(slot_bytes, n_slots) from the parent engine's halo plans.

    Slot capacity covers the largest single boundary message (widest
    plan × npz levels × 8 bytes, doubled for headroom); the slot count
    covers every (exchange plan × concurrent field slot) pair that can
    be in flight at once across both phases, doubled so cross-member
    pipelining never queues on mailbox capacity.
    """
    halo = engine.halo
    max_cells = 1
    plan_count = 0
    for rank in range(engine.partitioner.total_ranks):
        for phase in (0, 1):
            for plan in halo.plans[rank][phase]:
                max_cells = max(max_cells, plan.cells)
                plan_count += 1
    slot_bytes = max(4096, max_cells * max(1, config.npz) * 8 * 2)
    fields = max(5, 2 + config.n_tracers)
    n_slots = min(4096, max(64, plan_count * fields * 2))
    return slot_bytes, n_slots


def _fold_partials(ranked: Dict[int, float], n_ranks: int) -> float:
    """Re-run the engine's conservation fold: 0.0 + p0 + p1 + ... in
    rank order — the same float addition sequence, bit for bit."""
    total = 0.0
    for rank in range(n_ranks):
        total += ranked[rank]
    return total


def _merge_history(
    worker_histories: List[Dict[int, List[Dict[str, object]]]],
    member: int,
    n_ranks: int,
    mass0: float,
    tracer0: Optional[float],
) -> List[Dict[str, float]]:
    """Fold the workers' per-rank partial diagnostics into the entries
    ``EnsembleDriver._diagnose`` would have recorded."""
    per_worker = [wh.get(member, []) for wh in worker_histories]
    n_steps = min((len(entries) for entries in per_worker), default=0)
    merged: List[Dict[str, float]] = []
    for i in range(n_steps):
        rows = [entries[i] for entries in per_worker]
        mass_parts: Dict[int, float] = {}
        wind_parts: Dict[int, float] = {}
        w_parts: Dict[int, float] = {}
        tracer_parts: Dict[int, Optional[float]] = {}
        for row in rows:
            mass_parts.update(row["mass"])
            wind_parts.update(row["max_wind"])
            w_parts.update(row["max_w"])
            tracer_parts.update(row["tracer"])
        mass = _fold_partials(mass_parts, n_ranks)
        entry: Dict[str, float] = {
            "time": rows[0]["time"],
            "mass": mass,
            "max_wind": max(
                wind_parts[rank] for rank in range(n_ranks)
            ),
            "max_w": max(w_parts[rank] for rank in range(n_ranks)),
            "step": rows[0]["step"],
            "mass_drift": (mass - mass0) / mass0,
        }
        if tracer0:
            entry["tracer_drift"] = (
                _fold_partials(tracer_parts, n_ranks) - tracer0
            ) / tracer0
        merged.append(entry)
    return merged


def _check_baselines(
    driver: EnsembleDriver,
    ready: List[Dict[str, object]],
    n_ranks: int,
) -> None:
    """Exact-equality cross-check of worker replica baselines against
    the parent's member builds — catches a worker whose deterministic
    replay diverged (environment skew, registry drift) before any
    stepping happens."""
    mass_parts: Dict[int, Dict[int, float]] = {}
    tracer_parts: Dict[int, Dict[int, float]] = {}
    for payload in ready:
        for member, ranked in payload["mass0"].items():
            mass_parts.setdefault(member, {}).update(ranked)
        for member, ranked in payload["tracer0"].items():
            tracer_parts.setdefault(member, {}).update(ranked)
    for member, rec in driver.members.items():
        mass0 = _fold_partials(mass_parts[member], n_ranks)
        if mass0 != rec.mass0:
            raise RuntimeError(
                f"worker replica of member {member} diverged from the "
                f"parent build: initial mass {mass0!r} != {rec.mass0!r}"
            )
        if rec.tracer0 is not None:
            tracer0 = _fold_partials(tracer_parts[member], n_ranks)
            if tracer0 != rec.tracer0:
                raise RuntimeError(
                    f"worker replica of member {member} diverged from "
                    f"the parent build: initial tracer mass "
                    f"{tracer0!r} != {rec.tracer0!r}"
                )


def run_processes(
    scenario,
    config=None,
    steps: int = 1,
    *,
    members: Union[int, Sequence[int]] = 1,
    seed: int = 0,
    executor: Optional[ProcessRankExecutor] = None,
    workers: Optional[int] = None,
    resilience=None,
    comm_latency: Optional[float] = None,
    max_polls: Optional[int] = None,
    diagnostics: bool = True,
    check: bool = True,
) -> RunResult:
    """Run a scenario on the process-based rank executor (the
    ``executor="processes"`` branch of :func:`repro.run.run`)."""
    if resilience is not None:
        raise ValueError(
            "resilience= is not supported with executor='processes': "
            "chaos occurrence counters and rollback snapshots are "
            "per-process and would diverge from the single-process "
            "fault schedule; run chaos/rollback experiments on "
            "executor='sequential' or 'threads'"
        )
    # the parent driver builds engine + member states + conservation
    # baselines exactly like a sequential run, but is never stepped —
    # it exists to (a) size the transport, (b) receive the stepped
    # states and (c) run the summaries/checks through the engine path
    driver = EnsembleDriver(
        scenario,
        config,
        members=members,
        seed=seed,
        executor="sequential",
        diagnostics=diagnostics,
    )
    pex = executor if executor is not None else ProcessRankExecutor(
        workers=workers
    )
    owns_pex = executor is None
    tracer = _obs.get_tracer()
    try:
        n_ranks = driver.config.total_ranks
        slot_bytes, n_slots = _transport_sizing(driver.engine, driver.config)
        spec = WorkerSpec(
            scenario=driver.scenario.name,
            config=driver.config,
            seed=driver.seed,
            member_ids=driver.member_ids,
            comm_latency=comm_latency,
            max_polls=max_polls if max_polls is not None
            else _DEFAULT_MAX_POLLS,
            diagnostics=diagnostics,
            trace=tracer.enabled,
        )
        cache0 = _compile_cache.stats()
        pool0 = get_pool().stats()
        with tracer.span("ensemble.launch_workers") as sp:
            ready = pex.launch(spec, n_ranks, slot_bytes, n_slots)
            sp.set("workers", len(ready))
        _check_baselines(driver, ready, n_ranks)
        t0 = time.perf_counter()
        with tracer.span("ensemble.run"):
            pex.step(steps)
        seconds = time.perf_counter() - t0
        collected = pex.collect()
        reports = pex.collect_reports()
    except BaseException:
        if owns_pex:
            pex.close()
        raise
    # fold the stepped blocks back into the parent's member records
    worker_histories: List[Dict[int, List[Dict[str, object]]]] = []
    for payload in collected:
        histories: Dict[int, List[Dict[str, object]]] = {}
        for member, record in payload["members"].items():
            rec = driver.members[member]
            for rank, fields in record["states"].items():
                dst = rec.states[rank]
                for name in _STATE_FIELDS:
                    np.copyto(getattr(dst, name), fields[name])
                for src_tr, dst_tr in zip(fields["tracers"], dst.tracers):
                    np.copyto(dst_tr, src_tr)
            rec.time = record["time"]
            rec.step_count = record["step"]
            histories[member] = record["history"]
        worker_histories.append(histories)
    driver.steps_taken = steps
    for member, rec in driver.members.items():
        driver.history[member] = _merge_history(
            worker_histories, member, n_ranks, rec.mass0, rec.tracer0
        )
    # merge worker observability before the amortization deltas, so the
    # compile counters in the result cover the whole process tree
    from repro.runtime import procs as _procs

    _procs.fold_worker_reports(reports)
    cache1 = _compile_cache.stats()
    pool1 = get_pool().stats()
    amortization = {
        "members": len(driver.member_ids),
        "grid_builds": driver._grid_builds,
        "grid_builds_avoided": driver._grid_builds_avoided,
        "compile_hits": cache1["hits"] - cache0["hits"],
        "compile_misses": cache1["misses"] - cache0["misses"],
        "pool_reuse_hits": pool1["reuse_hits"] - pool0["reuse_hits"],
    }
    _metrics.record_run(
        members=len(driver.member_ids),
        member_steps=steps * len(driver.member_ids),
        seconds=seconds,
        grid_builds=driver._grid_builds,
        grid_builds_avoided=driver._grid_builds_avoided,
        compile_hits=amortization["compile_hits"],
        compile_misses=amortization["compile_misses"],
        pool_reuse_hits=amortization["pool_reuse_hits"],
    )
    executor_repr = repr(pex)
    if owns_pex:
        pex.close()
    try:
        checks = (
            driver.reference_check() if check
            else {m: [] for m in driver.member_ids}
        )
        member_results = []
        for m in driver.member_ids:
            driver._activate(m)
            member_results.append(MemberResult(
                member=m,
                steps=driver.steps_taken,
                summary=driver.engine.state_summary(),
                mass_drift=driver._mass_drift_loaded(m),
                tracer_drift=driver._tracer_drift_loaded(m),
                check_violations=checks[m],
                history=list(driver.history[m]),
                states=driver.members[m].states,
            ))
        return RunResult(
            scenario=driver.scenario.name,
            config=driver.config,
            steps=driver.steps_taken,
            seed=driver.seed,
            members=member_results,
            seconds=seconds,
            executor=executor_repr,
            amortization=amortization,
            engine=driver.engine,
        )
    finally:
        driver.close()
