"""Structured results of a facade run: per-member and ensemble views."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

__all__ = ["MemberResult", "RunResult"]


@dataclasses.dataclass
class MemberResult:
    """Outcome of one ensemble member (the control is member 0).

    ``states`` are the member's own per-rank
    :class:`~repro.fv3.initial.RankFields` — canonical, inspectable
    after the run, and independent of every other member. The engine
    core the members were stepped through is on the owning
    :class:`RunResult` (``result.engine``).
    """

    member: int
    steps: int
    summary: Dict[str, float]
    mass_drift: float
    tracer_drift: Optional[float]
    check_violations: List[str]
    history: List[Dict[str, float]]
    states: List[object]

    @property
    def ok(self) -> bool:
        return not self.check_violations


@dataclasses.dataclass
class RunResult:
    """What :func:`repro.run.run` returns: members + amortization.

    ``engine`` is the shared :class:`~repro.fv3.dyncore.DynamicalCore`
    every member was stepped through — use it for geometry
    (``engine.grids``, ``engine.h``) and communication diagnostics
    (``engine.halo.comm``); after the run it holds a working copy of
    the last member's state, so per-member fields belong on
    ``member(k).states``.
    """

    scenario: str
    config: object
    steps: int
    seed: int
    members: List[MemberResult]
    seconds: float
    executor: str
    amortization: Dict[str, object]
    engine: object = None

    def member(self, member_id: int) -> MemberResult:
        for m in self.members:
            if m.member == member_id:
                return m
        raise KeyError(f"no member {member_id} in this run")

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.members)

    @property
    def violations(self) -> Dict[int, List[str]]:
        return {
            m.member: m.check_violations
            for m in self.members if m.check_violations
        }

    def describe(self) -> str:
        """A short human-readable account of the run."""
        am = self.amortization
        lines = [
            f"scenario {self.scenario!r}: {len(self.members)} member(s) x "
            f"{self.steps} step(s) in {self.seconds:.3f}s "
            f"[{self.executor}]",
        ]
        for m in self.members:
            status = "OK" if m.ok else "; ".join(m.check_violations)
            lines.append(
                f"  member {m.member}: max|V|={m.summary['max_wind']:.2f} "
                f"m/s  mass drift={m.mass_drift:+.2e}  checks: {status}"
            )
        lines.append(
            f"  amortized: grids {am['grid_builds_avoided']} builds "
            f"avoided, compile cache {am['compile_hits']} hits / "
            f"{am['compile_misses']} misses, pool reuse "
            f"{am['pool_reuse_hits']}"
        )
        return "\n".join(lines)
