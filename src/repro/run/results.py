"""Structured results of a facade run: per-member and ensemble views.

Both result types serialize to JSON (``to_json``/``from_json``) for the
serving layer's response path: every scalar field round-trips exactly
(Python's JSON float encoding is ``repr``-based, so ``float`` values
survive bit-identically). The two object-graph fields do **not**
serialize — ``MemberResult.states`` (raw prognostic arrays; persist
those with :func:`repro.resilience.save_checkpoint`) and
``RunResult.engine`` (the live core) — a deserialized result carries
``states=[]`` / ``engine=None``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

__all__ = ["MemberResult", "RunResult"]


@dataclasses.dataclass
class MemberResult:
    """Outcome of one ensemble member (the control is member 0).

    ``states`` are the member's own per-rank
    :class:`~repro.fv3.initial.RankFields` — canonical, inspectable
    after the run, and independent of every other member. The engine
    core the members were stepped through is on the owning
    :class:`RunResult` (``result.engine``).
    """

    member: int
    steps: int
    summary: Dict[str, float]
    mass_drift: float
    tracer_drift: Optional[float]
    check_violations: List[str]
    history: List[Dict[str, float]]
    states: List[object]

    @property
    def ok(self) -> bool:
        return not self.check_violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-able view (``states`` are not serialized)."""
        return {
            "member": self.member,
            "steps": self.steps,
            "summary": dict(self.summary),
            "mass_drift": self.mass_drift,
            "tracer_drift": self.tracer_drift,
            "check_violations": list(self.check_violations),
            "history": [dict(h) for h in self.history],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MemberResult":
        return cls(
            member=int(data["member"]),
            steps=int(data["steps"]),
            summary=dict(data["summary"]),
            mass_drift=float(data["mass_drift"]),
            tracer_drift=(
                None if data.get("tracer_drift") is None
                else float(data["tracer_drift"])
            ),
            check_violations=list(data.get("check_violations", [])),
            history=[dict(h) for h in data.get("history", [])],
            states=[],
        )

    @classmethod
    def from_json(cls, text: str) -> "MemberResult":
        return cls.from_dict(json.loads(text))


@dataclasses.dataclass
class RunResult:
    """What :func:`repro.run.run` returns: members + amortization.

    ``engine`` is the shared :class:`~repro.fv3.dyncore.DynamicalCore`
    every member was stepped through — use it for geometry
    (``engine.grids``, ``engine.h``) and communication diagnostics
    (``engine.halo.comm``); after the run it holds a working copy of
    the last member's state, so per-member fields belong on
    ``member(k).states``.
    """

    scenario: str
    config: object
    steps: int
    seed: int
    members: List[MemberResult]
    seconds: float
    executor: str
    amortization: Dict[str, object]
    engine: object = None

    def member(self, member_id: int) -> MemberResult:
        for m in self.members:
            if m.member == member_id:
                return m
        raise KeyError(f"no member {member_id} in this run")

    def to_dict(self) -> Dict[str, object]:
        """JSON-able view (``engine`` and member states not serialized).

        ``config`` serializes as its dataclass field dict when it is a
        :class:`~repro.fv3.config.DynamicalCoreConfig` (the facade always
        sets one), or passes through unchanged if already a plain dict.
        """
        config = self.config
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            config = dataclasses.asdict(config)
        return {
            "scenario": self.scenario,
            "config": config,
            "steps": self.steps,
            "seed": self.seed,
            "members": [m.to_dict() for m in self.members],
            "seconds": self.seconds,
            "executor": self.executor,
            "amortization": dict(self.amortization),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        config = data.get("config")
        if isinstance(config, dict):
            # rebuild the real config type so round-tripped results
            # compare equal to the originals field by field
            from repro.fv3.config import DynamicalCoreConfig

            config = DynamicalCoreConfig(**config)
        return cls(
            scenario=str(data["scenario"]),
            config=config,
            steps=int(data["steps"]),
            seed=int(data["seed"]),
            members=[
                MemberResult.from_dict(m) for m in data.get("members", [])
            ],
            seconds=float(data["seconds"]),
            executor=str(data["executor"]),
            amortization=dict(data.get("amortization", {})),
            engine=None,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.members)

    @property
    def violations(self) -> Dict[int, List[str]]:
        return {
            m.member: m.check_violations
            for m in self.members if m.check_violations
        }

    def describe(self) -> str:
        """A short human-readable account of the run."""
        am = self.amortization
        lines = [
            f"scenario {self.scenario!r}: {len(self.members)} member(s) x "
            f"{self.steps} step(s) in {self.seconds:.3f}s "
            f"[{self.executor}]",
        ]
        for m in self.members:
            status = "OK" if m.ok else "; ".join(m.check_violations)
            lines.append(
                f"  member {m.member}: max|V|={m.summary['max_wind']:.2f} "
                f"m/s  mass drift={m.mass_drift:+.2e}  checks: {status}"
            )
        lines.append(
            f"  amortized: grids {am['grid_builds_avoided']} builds "
            f"avoided, compile cache {am['compile_hits']} hits / "
            f"{am['compile_misses']} misses, pool reuse "
            f"{am['pool_reuse_hits']}"
        )
        return "\n".join(lines)
