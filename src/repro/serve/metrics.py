"""Serving metrics: request counters and latency/queue-wait quantiles.

One :class:`ServeMetrics` per :class:`~repro.serve.ForecastService`.
Counters follow the request lifecycle (submitted → admitted or shed →
completed / deadline-exceeded / cancelled / failed) plus the resilience
actions taken along the way (retries, degraded runs, breaker trips live
on the :class:`~repro.serve.breaker.BreakerBoard`). Latency and queue
wait are kept as bounded reservoirs so p50/p99 are exact for smoke-test
scale runs and memory-bounded for long-lived services.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

__all__ = ["ServeMetrics", "percentile"]


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 100]); None on empty input."""
    if not samples:
        return None
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float error
    return ordered[int(rank) - 1]


class _Reservoir:
    """Keep the most recent ``cap`` samples (enough for exact smoke-run
    quantiles; bounded for long services)."""

    __slots__ = ("cap", "samples", "count")

    def __init__(self, cap: int = 4096):
        self.cap = cap
        self.samples: List[float] = []
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if len(self.samples) >= self.cap:
            self.samples.pop(0)
        self.samples.append(float(value))

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "p50": percentile(self.samples, 50),
            "p99": percentile(self.samples, 99),
            "max": max(self.samples) if self.samples else None,
        }


class ServeMetrics:
    """Thread-safe counters + reservoirs for one service instance."""

    _COUNTERS = (
        "submitted", "admitted", "shed", "completed", "deadline_exceeded",
        "cancelled", "failed", "retries", "degraded", "batches",
        "batched_requests", "steps_computed", "steps_saved",
    )

    def __init__(self, reservoir_cap: int = 4096):
        self._lock = threading.Lock()
        self._reservoir_cap = reservoir_cap
        self._reset_locked()

    def _reset_locked(self) -> None:
        self.counters: Dict[str, int] = {k: 0 for k in self._COUNTERS}
        self.latency = _Reservoir(self._reservoir_cap)
        self.queue_wait = _Reservoir(self._reservoir_cap)

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    # ------------------------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency.add(seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        with self._lock:
            self.queue_wait.add(seconds)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        with self._lock:
            out: Dict[str, object] = dict(self.counters)
            out["latency"] = self.latency.summary()
            out["queue_wait"] = self.queue_wait.summary()
            return out
