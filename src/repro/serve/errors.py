"""Typed error taxonomy of the forecast serving layer.

Every way a request can fail to produce a forecast is a distinct type,
so clients can dispatch on the class instead of parsing messages:

- :class:`Overloaded` — admission control refused the request *before*
  any work was done (bounded queue full, or the in-flight budget is
  exhausted). The request is safe to retry against another replica or
  after backoff; the error carries the observed depths and limits.
- :class:`DeadlineExceeded` — the request was admitted but its deadline
  budget ran out mid-flight; the phase breakdown says where the time
  went. The worker that was running it is *not* wedged: the step loop
  checks the budget cooperatively and pooled buffers are returned via
  :meth:`repro.runtime.BufferPool.cancel_scope`.
- :class:`RequestCancelled` — the client cancelled the ticket before
  completion.
- :class:`RequestFailed` — the model itself failed after the service's
  retry budget (service-level rollback-retry on recoverable faults) and
  degradation path were both exhausted; ``last`` is the final cause.
- :class:`ServiceClosed` — submit after :meth:`ForecastService.close`.

``ServeError`` is the common base. ``Overloaded``/``DeadlineExceeded``
mirror the taxonomy every RPC system ships (UNAVAILABLE/
DEADLINE_EXCEEDED) so the serving layer composes with real front ends.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "DeadlineExceeded",
    "Overloaded",
    "RequestCancelled",
    "RequestFailed",
    "ServeError",
    "ServiceClosed",
]


class ServeError(RuntimeError):
    """Base class of all serving-layer errors."""


class Overloaded(ServeError):
    """Admission control shed the request (retry later / elsewhere)."""

    def __init__(self, queue_depth: int, max_queue: int,
                 inflight: int, max_inflight: int):
        self.queue_depth = queue_depth
        self.max_queue = max_queue
        self.inflight = inflight
        self.max_inflight = max_inflight
        super().__init__(
            f"service overloaded: queue {queue_depth}/{max_queue}, "
            f"in flight {inflight}/{max_inflight}"
        )


class DeadlineExceeded(ServeError):
    """The request's deadline budget ran out (``phases`` says where)."""

    def __init__(self, request_id: int, deadline: float, elapsed: float,
                 phase: str, phases: Optional[Dict[str, float]] = None):
        self.request_id = request_id
        self.deadline = deadline
        self.elapsed = elapsed
        self.phase = phase
        self.phases = dict(phases or {})
        spent = ", ".join(
            f"{name}={seconds:.3f}s" for name, seconds in self.phases.items()
        ) or "(no phases recorded)"
        super().__init__(
            f"request {request_id}: deadline {deadline:.3f}s exceeded "
            f"after {elapsed:.3f}s in phase {phase!r} [{spent}]"
        )


class RequestCancelled(ServeError):
    """The client cancelled the ticket before the request completed."""

    def __init__(self, request_id: int, phase: str = "queued"):
        self.request_id = request_id
        self.phase = phase
        super().__init__(
            f"request {request_id}: cancelled while {phase}"
        )


class RequestFailed(ServeError):
    """Retries and degradation exhausted; ``last`` is the final cause."""

    def __init__(self, request_id: int, attempts: int,
                 last: BaseException):
        self.request_id = request_id
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"request {request_id}: failed after {attempts} attempt(s); "
            f"last failure: {type(last).__name__}: {last}"
        )


class ServiceClosed(ServeError):
    """The service is shut down and admits no new requests."""
