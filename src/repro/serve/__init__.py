"""repro.serve — the forecast serving layer with SLO enforcement.

The batch machinery answers "run this experiment"; this package answers
"keep answering forecast queries, under load, within deadlines, while
things break". One front door::

    from repro.serve import ForecastRequest, ForecastService

    with ForecastService() as svc:
        ticket = svc.submit(
            ForecastRequest("baroclinic_wave", steps=4, deadline=30.0)
        )
        response = ticket.result()
        print(response.report["mass_drift"], response.latency)

The pieces (see ``docs/serving.md`` for the full SLO model):

- :class:`ForecastService` — bounded-queue admission with load
  shedding, worker threads batching compatible requests onto warm
  :class:`~repro.run.EnsembleDriver` engines, a checkpoint-warmed
  :class:`~repro.serve.cache.StateCache` for repeat queries.
- :class:`~repro.serve.budget.DeadlineBudget` /
  :class:`~repro.serve.budget.RetryPolicy` — phase-attributed deadline
  budgets and bounded retry with deterministic full-jitter backoff.
- :class:`~repro.serve.breaker.CircuitBreaker` /
  :class:`~repro.serve.breaker.BreakerBoard` — per (scenario, backend)
  breakers routing to the bit-identical NumPy fallback when a primary
  backend keeps failing.
- the typed error taxonomy in :mod:`repro.serve.errors` —
  :class:`Overloaded`, :class:`DeadlineExceeded`,
  :class:`RequestCancelled`, :class:`RequestFailed`,
  :class:`ServiceClosed`.

:func:`serving_summary` aggregates every live service's counters for
the :func:`repro.obs.report` serving footer.
"""

from __future__ import annotations

from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.budget import DeadlineBudget, RetryPolicy
from repro.serve.cache import CacheEntry, StateCache
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    RequestCancelled,
    RequestFailed,
    ServeError,
    ServiceClosed,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.service import (
    ForecastRequest,
    ForecastResponse,
    ForecastService,
    ForecastTicket,
    ServiceConfig,
    serving_summary,
)

__all__ = [
    "BreakerBoard",
    "CacheEntry",
    "CircuitBreaker",
    "DeadlineBudget",
    "DeadlineExceeded",
    "ForecastRequest",
    "ForecastResponse",
    "ForecastService",
    "ForecastTicket",
    "Overloaded",
    "RequestCancelled",
    "RequestFailed",
    "RetryPolicy",
    "ServeError",
    "ServeMetrics",
    "ServiceClosed",
    "ServiceConfig",
    "StateCache",
    "serving_summary",
]
