"""Per-(scenario, backend) circuit breakers for graceful degradation.

The classic three-state machine:

- **closed** — requests run on the primary backend. Consecutive
  failures are counted; reaching ``threshold`` trips the breaker.
- **open** — requests route straight to the bit-exact NumPy fallback
  backend without touching the primary (the whole point: a broken JIT
  toolchain or a poisoned compile cache must not cost every request a
  failed attempt + retry). After ``cooldown`` seconds the breaker
  half-opens.
- **half-open** — exactly one probe request is allowed through to the
  primary. Success closes the breaker (recovery); failure re-opens it
  and restarts the cooldown.

Because every repro backend is bit-identical by contract (the
34-stencil suite asserts exact equality), degradation changes *where*
the arithmetic runs, never *what* it produces — a degraded response is
bit-identical to the NumPy backend run directly. That turns the usual
"degraded = approximate" trade into "degraded = slower", which is the
only trade a deterministic forecast service can afford.

Breakers are keyed by (scenario, backend): a broken compiled kernel
for one scenario's stencil suite must not degrade every other
scenario's traffic.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Tuple

__all__ = ["BreakerOpen", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpen(RuntimeError):
    """Internal signal: the primary path is vetoed right now."""


class CircuitBreaker:
    """One breaker (see module docstring). Thread-safe; ``clock`` is
    injectable so tests drive the cooldown without sleeping."""

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        # counters for the serving footer
        self.trips = 0
        self.probes = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN
        return self._state

    # ------------------------------------------------------------------
    def allow_primary(self) -> bool:
        """Whether this request may use the primary backend.

        In half-open state only one concurrent caller gets ``True`` (the
        probe); everyone else keeps degrading until the probe reports.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self.recoveries += 1
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                # failed probe: back to open, restart the cooldown
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self.trips += 1
                return
            self._consecutive_failures += 1
            if (
                state == CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "probes": self.probes,
                "recoveries": self.recoveries,
            }


class BreakerBoard:
    """The service's breaker registry, keyed by (scenario, backend)."""

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def get(self, scenario: str, backend: str) -> CircuitBreaker:
        key = (scenario, backend)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.threshold, self.cooldown, self._clock
                )
                self._breakers[key] = breaker
            return breaker

    def stats(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            items = list(self._breakers.items())
        return {
            f"{scenario}/{backend}": breaker.stats()
            for (scenario, backend), breaker in items
        }

    def totals(self) -> Dict[str, int]:
        with self._lock:
            breakers = list(self._breakers.values())
        return {
            "trips": sum(b.trips for b in breakers),
            "probes": sum(b.probes for b in breakers),
            "recoveries": sum(b.recoveries for b in breakers),
            "open": sum(1 for b in breakers if b.state != CLOSED),
        }
