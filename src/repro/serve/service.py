"""The forecast front door: admission, batching, SLO enforcement.

:class:`ForecastService` turns the batch experiment machinery
(:class:`~repro.run.EnsembleDriver`) into a long-lived request/response
service without giving up any of its guarantees:

- **Admission control.** Requests enter a bounded queue; when the queue
  or the in-flight budget is full the request is *shed* with a typed
  :class:`~repro.serve.errors.Overloaded` before any model work is done
  — under overload the service degrades to fast rejections, never to
  unbounded latency.
- **Warm drivers.** Worker threads batch compatible requests (same
  scenario + config) onto a warm :class:`EnsembleDriver` kept per
  (scenario, config). The driver's engine — geometry, orchestrated
  stencil suite, compiled programs, pooled buffers — is built on the
  first request and reused for every subsequent one; request states are
  swapped through it as dynamic member slots. A request's state remains
  a pure function of its (scenario, config, seed, member): the slot id
  never feeds the numerics.
- **State cache.** Completed lead times are snapshotted into a
  :class:`~repro.serve.cache.StateCache`. A repeat query is answered
  from the cache with zero model work; a deeper query warm-starts from
  the closest cached step and computes only the remainder.
- **Deadline budgets.** Each request carries a
  :class:`~repro.serve.budget.DeadlineBudget` started at submission.
  Queue wait, warm-up and every model step are charged to named phases;
  the step loop checks the budget cooperatively between steps, so an
  exhausted request fails with a phase-attributed
  :class:`~repro.serve.errors.DeadlineExceeded` while its worker moves
  on — scratch buffers are reclaimed via
  :meth:`~repro.runtime.BufferPool.cancel_scope`, so a cancelled or
  expired request cannot leak pool memory or wedge a worker.
- **Retry with backoff.** Recoverable model faults (chaos-injected
  bit flips, guard-triggered rollbacks that exhausted the engine-level
  retry budget) are retried at the service level under a bounded
  :class:`~repro.serve.budget.RetryPolicy` with deterministic
  full-jitter backoff, clipped to the remaining deadline.
- **Graceful degradation.** A :class:`~repro.serve.breaker.BreakerBoard`
  keyed by (scenario, backend) counts consecutive primary-backend
  failures; a tripped breaker routes steps to the NumPy fallback, which
  is bit-identical by the backend contract — degraded means slower,
  never different. Half-open probes restore the primary automatically.

Everything is observable: per-request spans land in the
:mod:`repro.obs` tracer, and the service's counters feed the serving
footer of :func:`repro.obs.report`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
import weakref
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.dsl import backends as _backends
from repro.obs import tracer as _obs
from repro.resilience import (
    GuardConfig,
    GuardError,
    RecoverableFault,
    ResilienceConfig,
    RetriesExhaustedError,
)
from repro.run import EnsembleDriver, build_core, member_rng
from repro.runtime import get_pool
from repro.serve.breaker import BreakerBoard
from repro.serve.budget import DeadlineBudget, RetryPolicy
from repro.serve.cache import CacheEntry, StateCache
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    RequestCancelled,
    RequestFailed,
    ServeError,
    ServiceClosed,
)
from repro.serve.metrics import ServeMetrics, percentile

__all__ = [
    "ForecastRequest",
    "ForecastResponse",
    "ForecastService",
    "ForecastTicket",
    "ServiceConfig",
    "serving_summary",
]

_TRACER = _obs.get_tracer()

#: faults the service-level retry loop is allowed to absorb: chaos-
#: injected recoverable faults, engine retry budgets running dry, and
#: guard trips that escaped the engine (``policy="raise"``)
_RETRYABLE = (RecoverableFault, RetriesExhaustedError, GuardError)

#: live services, for the obs report's serving footer
_SERVICES: "weakref.WeakSet[ForecastService]" = weakref.WeakSet()


@dataclasses.dataclass(frozen=True)
class ForecastRequest:
    """One forecast query.

    Attributes:
        scenario: registered scenario name.
        steps: requested lead time in physics steps (>= 1).
        config: optional :class:`~repro.fv3.DynamicalCoreConfig`
            override (None = the scenario's default).
        seed: ensemble root seed.
        member: ensemble member id (0 = unperturbed control).
        deadline: wall-clock budget in seconds, measured from
            submission (None = the service default; ``inf`` disables).
        use_cache: serve/seed from the state cache (exact hits and
            warm starts). Disable for cache-bypass measurements.
    """

    scenario: str
    steps: int
    config: object = None
    seed: int = 0
    member: int = 0
    deadline: Optional[float] = None
    use_cache: bool = True

    def __post_init__(self):
        if self.steps < 1:
            raise ValueError("steps must be >= 1")


@dataclasses.dataclass
class ForecastResponse:
    """The forecast answer plus its serving provenance."""

    request_id: int
    scenario: str
    member: int
    seed: int
    step: int
    report: Dict[str, object]
    backend: str
    degraded: bool
    cache: str                    # "hit" | "warm" | "miss" | "bypass"
    attempts: int
    steps_computed: int
    latency: float
    queue_wait: float
    phases: Dict[str, float]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs (see ``docs/serving.md`` for tuning guidance).

    Attributes:
        max_queue: bounded admission queue; a full queue sheds.
        max_inflight: cap on admitted-but-unfinished requests.
        workers: worker threads pulling batches off the queue.
        batch_max: max compatible requests fused into one warm-driver
            batch.
        default_deadline: per-request budget when the request carries
            none (None = unlimited).
        max_retries: service-level re-attempts per request on
            recoverable model faults.
        backoff_base / max_backoff / retry_seed: the
            :class:`RetryPolicy` schedule (deterministic full jitter).
        breaker_threshold / breaker_cooldown: consecutive failures that
            trip a (scenario, backend) breaker, and the open→half-open
            cooldown in seconds.
        backend: primary backend name (None = the process default at
            service construction).
        fallback_backend: bit-identical degradation target.
        cache_entries / cache_bytes: :class:`StateCache` budget
            (``cache_entries=0`` disables caching entirely).
        executor: rank executor spec forwarded to
            :func:`repro.run.build_core` for warm engines.
        resilience: :class:`~repro.resilience.ResilienceConfig` for the
            warm engines. None installs the serving default — rollback
            guards with the engine's own retry budget — so injected
            faults are caught and rolled back *inside* a step before the
            service-level retry loop ever sees them. A response must
            never silently carry a NaN a guard would have caught.
    """

    max_queue: int = 64
    max_inflight: int = 128
    workers: int = 2
    batch_max: int = 4
    default_deadline: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.0
    max_backoff: float = 0.5
    retry_seed: int = 0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    backend: Optional[str] = None
    fallback_backend: str = "numpy"
    cache_entries: int = 64
    cache_bytes: int = 512 * 1024 * 1024
    executor: object = None
    resilience: object = None


class ForecastTicket:
    """A client's handle on one submitted request."""

    def __init__(self, request_id: int, request: ForecastRequest):
        self.request_id = request_id
        self.request = request
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._response: Optional[ForecastResponse] = None
        self._error: Optional[BaseException] = None
        self._cancelled = False

    def cancel(self) -> bool:
        """Request cancellation; returns True if the request had not
        finished yet (the worker honours it at the next step
        boundary)."""
        with self._lock:
            if self._event.is_set():
                return False
            self._cancelled = True
            return True

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ForecastResponse:
        """Block for the response; raises the typed serving error on
        failure, or ``TimeoutError`` if the wait itself times out."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._response

    # worker side -------------------------------------------------------
    def _resolve(self, response: Optional[ForecastResponse] = None,
                 error: Optional[BaseException] = None) -> None:
        with self._lock:
            self._response = response
            self._error = error
            self._event.set()


class _Entry:
    """Worker-side bookkeeping for one admitted request."""

    __slots__ = ("request", "ticket", "budget", "submitted_at", "slot",
                 "attempts", "steps_computed", "degraded", "cache",
                 "backend", "queue_wait")

    def __init__(self, request: ForecastRequest, ticket: ForecastTicket,
                 budget: DeadlineBudget, submitted_at: float):
        self.request = request
        self.ticket = ticket
        self.budget = budget
        self.submitted_at = submitted_at
        self.slot: Optional[int] = None
        self.attempts = 1
        self.steps_computed = 0
        self.degraded = False
        self.cache = "bypass"
        self.backend = ""
        self.queue_wait = 0.0


class ForecastService:
    """See the module docstring. ``clock``/``sleeper`` are injectable
    for deterministic tests (deadlines, breaker cooldowns, backoff)."""

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 sleeper: Callable[[float], None] = time.sleep):
        self.config = config or ServiceConfig()
        self._clock = clock
        self._sleeper = sleeper
        self.metrics = ServeMetrics()
        self.cache = StateCache(self.config.cache_entries,
                                self.config.cache_bytes)
        self.breakers = BreakerBoard(self.config.breaker_threshold,
                                     self.config.breaker_cooldown, clock)
        self.retry = RetryPolicy(self.config.max_retries,
                                 self.config.backoff_base,
                                 self.config.max_backoff,
                                 self.config.retry_seed)
        # the primary backend is pinned at construction so a concurrent
        # degraded batch (which flips the process default under a lock)
        # cannot change what "primary" means for everyone else
        self._primary = (
            self.config.backend or _backends.current_default_backend()
        )
        self._resilience = (
            self.config.resilience
            if self.config.resilience is not None
            else ResilienceConfig(guard=GuardConfig(policy="rollback"))
        )
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._queue: "deque[_Entry]" = deque()
        self._inflight = 0
        self._closed = False
        self._next_request_id = 0
        self._next_slot = 0
        # one warm driver per (scenario, config), plus its use lock:
        # the driver swaps members through a single engine, so two
        # workers holding batches with the same key must interleave
        # per-operation, never overlap
        self._drivers: Dict[
            Tuple[str, object], Tuple[EnsembleDriver, threading.Lock]
        ] = {}
        self._driver_lock = threading.Lock()
        # explicit-backend execution serializes on this lock because the
        # DSL default-backend switch is process-global; results are
        # unaffected either way (backends are bit-identical)
        self._backend_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"forecast-worker-{i}",
                daemon=True,
            )
            for i in range(max(1, self.config.workers))
        ]
        for t in self._workers:
            t.start()
        _SERVICES.add(self)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, request: ForecastRequest) -> ForecastTicket:
        """Admit one request; returns a ticket immediately.

        Raises :class:`ServiceClosed` after :meth:`close`, and
        :class:`Overloaded` when the queue or in-flight budget is full
        — shedding happens here, before any model work.
        """
        self.metrics.bump("submitted")
        now = self._clock()
        with self._cv:
            if self._closed:
                raise ServiceClosed("service is closed")
            if (
                len(self._queue) >= self.config.max_queue
                or self._inflight >= self.config.max_inflight
            ):
                self.metrics.bump("shed")
                raise Overloaded(
                    len(self._queue), self.config.max_queue,
                    self._inflight, self.config.max_inflight,
                )
            self._next_request_id += 1
            request_id = self._next_request_id
            deadline = (
                request.deadline if request.deadline is not None
                else self.config.default_deadline
            )
            ticket = ForecastTicket(request_id, request)
            entry = _Entry(
                request, ticket,
                DeadlineBudget(deadline, request_id, self._clock),
                now,
            )
            self._queue.append(entry)
            self._inflight += 1
            self.metrics.bump("admitted")
            self._cv.notify()
        return ticket

    def forecast(self, scenario: str, steps: int,
                 **kwargs) -> ForecastResponse:
        """Submit-and-wait convenience for synchronous callers."""
        return self.submit(
            ForecastRequest(scenario, steps, **kwargs)
        ).result()

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """This service's counters for footers and smoke benchmarks."""
        return {
            "requests": self.metrics.summary(),
            "cache": self.cache.stats(),
            "breakers": self.breakers.totals(),
            "breaker_detail": self.breakers.stats(),
            "drivers": len(self._drivers),
            "primary_backend": self._primary,
            "fallback_backend": self.config.fallback_backend,
        }

    def close(self, wait: bool = True) -> None:
        """Stop admitting; drain the queue (``wait=True``) and release
        the warm drivers. Idempotent."""
        with self._cv:
            if self._closed and not self._workers:
                return
            self._closed = True
            self._cv.notify_all()
        if wait:
            for t in self._workers:
                t.join()
        self._workers = []
        # anything still queued (close(wait=False)) fails typed
        while True:
            with self._cv:
                if not self._queue:
                    break
                entry = self._queue.popleft()
            self._fail(entry, ServiceClosed(
                f"request {entry.ticket.request_id}: service closed "
                "before execution"
            ))
        with self._driver_lock:
            drivers, self._drivers = list(self._drivers.values()), {}
        for driver, _ in drivers:
            driver.close()

    def __enter__(self) -> "ForecastService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            try:
                self._process_batch(batch)
            except BaseException as exc:  # never kill a worker silently
                for entry in batch:
                    if not entry.ticket.done():
                        self._fail(entry, RequestFailed(
                            entry.ticket.request_id, entry.attempts, exc
                        ))

    def _take_batch(self) -> Optional[List[_Entry]]:
        """Pop the oldest request plus up to ``batch_max - 1`` queued
        requests compatible with it (same scenario + config), so one
        warm driver serves them step-major."""
        with self._cv:
            while not self._queue:
                if self._closed:
                    return None
                self._cv.wait()
            head = self._queue.popleft()
            key = (head.request.scenario, head.request.config)
            batch = [head]
            kept: "deque[_Entry]" = deque()
            while self._queue and len(batch) < self.config.batch_max:
                entry = self._queue.popleft()
                if (entry.request.scenario, entry.request.config) == key:
                    batch.append(entry)
                else:
                    kept.append(entry)
            self._queue.extendleft(reversed(kept))
        if len(batch) > 1:
            self.metrics.bump("batches")
            self.metrics.bump("batched_requests", len(batch))
        return batch

    def _driver_for(
        self, request: ForecastRequest
    ) -> Tuple[EnsembleDriver, threading.Lock]:
        """The warm driver (and its use lock) for this (scenario,
        config): built — engine compile and all — on first use, reused
        for every later batch."""
        key = (request.scenario, request.config)
        with self._driver_lock:
            cached = self._drivers.get(key)
            if cached is None:
                with _TRACER.span("serve.warm_engine"):
                    engine = build_core(
                        request.scenario,
                        request.config,
                        executor=self.config.executor,
                        resilience=self._resilience,
                    )
                    driver = EnsembleDriver(
                        request.scenario,
                        request.config,
                        members=(),
                        engine=engine,
                        resilience=self._resilience,
                        diagnostics=False,
                    )
                cached = (driver, threading.Lock())
                self._drivers[key] = cached
            return cached

    def _process_batch(self, batch: List[_Entry]) -> None:
        now = self._clock()
        driver: Optional[EnsembleDriver] = None
        dlock: Optional[threading.Lock] = None
        active: List[_Entry] = []
        for entry in batch:
            entry.queue_wait = now - entry.submitted_at
            entry.budget.charge("queue", entry.queue_wait)
            self.metrics.observe_queue_wait(entry.queue_wait)
            if entry.ticket.cancelled:
                self._fail(entry, RequestCancelled(
                    entry.ticket.request_id, "queued"
                ))
                continue
            if entry.budget.exhausted:
                self._fail(entry, entry.budget.exceeded("queue"))
                continue
            try:
                with _TRACER.span("serve.request"):
                    if driver is None:
                        with entry.budget.phase("warm"):
                            driver, dlock = self._driver_for(entry.request)
                    if self._install(driver, dlock, entry):
                        active.append(entry)
            except ServeError as exc:
                self._fail(entry, exc)
            except BaseException as exc:
                self._fail(entry, RequestFailed(
                    entry.ticket.request_id, entry.attempts, exc
                ))
        if driver is None:
            return
        # step-major sweeps: every active request advances one step per
        # sweep; finished / expired / cancelled ones drop out. Two
        # workers batching the same (scenario, config) interleave their
        # sweeps through the shared driver via its lock.
        while active:
            for entry in list(active):
                try:
                    with _TRACER.span("serve.request"):
                        self._advance(driver, dlock, entry)
                except ServeError as exc:
                    active.remove(entry)
                    self._evict(driver, dlock, entry)
                    self._fail(entry, exc)
                except BaseException as exc:
                    active.remove(entry)
                    self._evict(driver, dlock, entry)
                    self._fail(entry, RequestFailed(
                        entry.ticket.request_id, entry.attempts, exc
                    ))
                else:
                    if driver.members[entry.slot].step_count \
                            >= entry.request.steps:
                        active.remove(entry)
                        self._finish(driver, dlock, entry)

    # ------------------------------------------------------------------
    def _series_key(self, request: ForecastRequest):
        return (request.scenario, request.config, request.seed,
                request.member)

    def _install(self, driver: EnsembleDriver, dlock: threading.Lock,
                 entry: _Entry) -> bool:
        """Give the request a member slot in the warm driver — from the
        cache when possible. Returns False when the request was answered
        outright from an exact cache hit."""
        request = entry.request
        with self._lock:
            self._next_slot += 1
            entry.slot = self._next_slot
        if request.use_cache and self.cache.max_entries > 0:
            series = self._series_key(request)
            exact = self.cache.exact(series, request.steps)
            if exact is not None:
                entry.cache = "hit"
                entry.backend = "cache"
                self.metrics.bump("steps_saved", request.steps)
                self._respond(entry, dict(exact.report))
                return False
            warm, warm_step = self.cache.best_at_or_below(
                series, request.steps
            )
            with entry.budget.phase("warm"), dlock:
                if warm is not None:
                    entry.cache = "warm"
                    self.metrics.bump("steps_saved", warm_step)
                    driver.add_member(
                        entry.slot,
                        snapshot=warm.snapshot,
                        mass0=warm.mass0,
                        tracer0=warm.tracer0,
                    )
                else:
                    entry.cache = "miss"
                    driver.add_member(
                        entry.slot,
                        rng=member_rng(request.seed, request.member),
                    )
            entry.budget.check("warm")
            return True
        with entry.budget.phase("warm"), dlock:
            driver.add_member(
                entry.slot,
                rng=member_rng(request.seed, request.member),
            )
        entry.budget.check("warm")
        return True

    @contextlib.contextmanager
    def _on_backend(self, backend: str):
        """Run under an explicit DSL default backend. The switch is
        process-global, so it is serialized; the pinned-at-construction
        ambient default runs lock-free."""
        if backend == _backends.current_default_backend():
            yield
            return
        with self._backend_lock:
            with _backends.default_backend(backend):
                yield

    def _advance(self, driver: EnsembleDriver, dlock: threading.Lock,
                 entry: _Entry) -> None:
        """One model step for one request: cooperative cancellation and
        deadline checks, breaker-routed backend choice, service-level
        retry on recoverable faults, pool reclamation on abort."""
        if entry.ticket.cancelled:
            raise RequestCancelled(entry.ticket.request_id, "stepping")
        breaker = self.breakers.get(entry.request.scenario, self._primary)
        while True:
            entry.budget.check("steps")
            on_primary = breaker.allow_primary()
            backend = (
                self._primary if on_primary
                else self.config.fallback_backend
            )
            if not on_primary and not entry.degraded:
                entry.degraded = True
                self.metrics.bump("degraded")
            try:
                with entry.budget.phase("steps"), dlock:
                    with get_pool().cancel_scope(
                        f"serve.req{entry.ticket.request_id}"
                    ):
                        with self._on_backend(backend):
                            driver.step_selected([entry.slot], 1)
            except _RETRYABLE as exc:
                if on_primary:
                    breaker.record_failure()
                if entry.attempts > self.retry.max_retries:
                    raise RequestFailed(
                        entry.ticket.request_id, entry.attempts, exc
                    )
                entry.attempts += 1
                self.metrics.bump("retries")
                self.retry.sleep(
                    entry.ticket.request_id, entry.attempts - 1,
                    entry.budget, self._sleeper,
                )
                continue
            if on_primary:
                breaker.record_success()
            entry.backend = backend
            entry.steps_computed += 1
            self.metrics.bump("steps_computed")
            return

    def _finish(self, driver: EnsembleDriver, dlock: threading.Lock,
                entry: _Entry) -> None:
        """Build the response, cache the final state, free the slot."""
        request = entry.request
        with dlock:
            report = driver.member_report(entry.slot)
            report["member"] = request.member
            if request.use_cache and self.cache.max_entries > 0:
                rec = driver.members[entry.slot]
                self.cache.put(
                    self._series_key(request),
                    rec.step_count,
                    CacheEntry(
                        driver.snapshot_member(entry.slot),
                        rec.mass0, rec.tracer0, dict(report),
                    ),
                )
            driver.remove_member(entry.slot)
        self._respond(entry, report)

    def _evict(self, driver: EnsembleDriver, dlock: threading.Lock,
               entry: _Entry) -> None:
        """Drop a failed/cancelled request's slot (if it got one)."""
        with dlock:
            if entry.slot is not None and entry.slot in driver.members:
                driver.remove_member(entry.slot)

    # ------------------------------------------------------------------
    def _respond(self, entry: _Entry, report: Dict[str, object]) -> None:
        entry.budget._close_phase()
        latency = self._clock() - entry.submitted_at
        response = ForecastResponse(
            request_id=entry.ticket.request_id,
            scenario=entry.request.scenario,
            member=entry.request.member,
            seed=entry.request.seed,
            step=int(report.get("step", entry.request.steps)),
            report=report,
            backend=entry.backend,
            degraded=entry.degraded,
            cache=entry.cache,
            attempts=entry.attempts,
            steps_computed=entry.steps_computed,
            latency=latency,
            queue_wait=entry.queue_wait,
            phases=dict(entry.budget.phases),
        )
        self.metrics.bump("completed")
        self.metrics.observe_latency(latency)
        entry.ticket._resolve(response=response)
        with self._cv:
            self._inflight -= 1

    def _fail(self, entry: _Entry, error: BaseException) -> None:
        if isinstance(error, DeadlineExceeded):
            self.metrics.bump("deadline_exceeded")
        elif isinstance(error, RequestCancelled):
            self.metrics.bump("cancelled")
        else:
            self.metrics.bump("failed")
        latency = self._clock() - entry.submitted_at
        self.metrics.observe_latency(latency)
        entry.ticket._resolve(error=error)
        with self._cv:
            self._inflight -= 1


def serving_summary() -> Optional[Dict[str, object]]:
    """Aggregated counters across every live :class:`ForecastService`
    in the process, or None when no service has handled traffic (the
    obs report's serving footer)."""
    pairs = [
        (s, s.summary()) for s in _SERVICES
    ]
    pairs = [
        (s, summary) for s, summary in pairs
        if summary["requests"]["submitted"]
    ]
    if not pairs:
        return None
    summaries = [summary for _, summary in pairs]
    totals: Dict[str, object] = {"services": len(summaries)}
    for name in ServeMetrics._COUNTERS:
        totals[name] = sum(s["requests"][name] for s in summaries)
    for reservoir in ("latency", "queue_wait"):
        # smoke-scale exactness: merge the raw reservoirs
        merged: List[float] = []
        for service, _ in pairs:
            with service.metrics._lock:
                source = (
                    service.metrics.latency if reservoir == "latency"
                    else service.metrics.queue_wait
                )
                merged.extend(source.samples)
        totals[reservoir] = {
            "p50": percentile(merged, 50),
            "p99": percentile(merged, 99),
        }
    totals["cache"] = {
        "hits": sum(s["cache"]["hits"] for s in summaries),
        "warm_hits": sum(s["cache"]["warm_hits"] for s in summaries),
        "misses": sum(s["cache"]["misses"] for s in summaries),
    }
    lookups = totals["cache"]["hits"] + totals["cache"]["misses"]
    totals["cache"]["hit_ratio"] = (
        totals["cache"]["hits"] / lookups if lookups else None
    )
    totals["breakers"] = {
        key: sum(s["breakers"][key] for s in summaries)
        for key in ("trips", "probes", "recoveries", "open")
    }
    return totals
