"""Checkpoint-warmed state cache: repeated queries skip the step loop.

Entries are keyed by ``(scenario, config, seed, member, step)`` — the
full determinism key of the model: the PR-6 seeding contract makes a
member's state a pure function of exactly those five coordinates, which
is what makes a *state* cache sound at all. Two lookups:

- **exact hit** — a request whose lead step is already cached returns
  the stored response payload with zero model work;
- **warm start** — otherwise the deepest cached step *at or below* the
  requested lead seeds the driver via
  :meth:`~repro.run.EnsembleDriver.add_member` (``snapshot=``), and
  only the remaining steps are computed. The entry carries the original
  run's conservation baselines (``mass0``/``tracer0``) so drift
  reporting stays anchored to the true initial state.

Entries hold bit-exact in-memory :class:`~repro.resilience.Snapshot`
copies (the same machinery the rollback loop trusts), evicted LRU under
an entry *and* byte budget.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.resilience import Snapshot

__all__ = ["CacheEntry", "StateCache"]

#: (scenario, config, seed, member) — the step-independent prefix
SeriesKey = Tuple[str, object, int, int]


class CacheEntry:
    """One cached step: the snapshot plus everything the response
    path needs to answer without touching the engine."""

    __slots__ = ("snapshot", "mass0", "tracer0", "report")

    def __init__(self, snapshot: Snapshot, mass0: float,
                 tracer0: Optional[float], report: Dict[str, object]):
        self.snapshot = snapshot
        self.mass0 = mass0
        self.tracer0 = tracer0
        self.report = report

    @property
    def nbytes(self) -> int:
        return self.snapshot.nbytes


class StateCache:
    """LRU over (series key, step) with entry and byte budgets."""

    def __init__(self, max_entries: int = 64,
                 max_bytes: int = 512 * 1024 * 1024):
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[SeriesKey, int], CacheEntry]" = (
            OrderedDict()
        )
        self._bytes = 0
        self.hits = 0
        self.warm_hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def put(self, series: SeriesKey, step: int, entry: CacheEntry) -> None:
        if self.max_entries <= 0:
            return
        key = (series, int(step))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def exact(self, series: SeriesKey, step: int) -> Optional[CacheEntry]:
        """The entry at exactly ``step``, or None. Counts hit/miss."""
        key = (series, int(step))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def best_at_or_below(
        self, series: SeriesKey, max_step: int
    ) -> Tuple[Optional[CacheEntry], int]:
        """The deepest cached step ``<= max_step`` for warm starting;
        returns ``(entry, step)`` or ``(None, 0)``. Counts a warm hit
        (not a full hit) when found."""
        best_step = -1
        best_key = None
        with self._lock:
            for (s, step), _ in self._entries.items():
                if s == series and step <= max_step and step > best_step:
                    best_step = step
                    best_key = (s, step)
            if best_key is None:
                return None, 0
            self._entries.move_to_end(best_key)
            self.warm_hits += 1
            return self._entries[best_key], best_step

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "warm_hits": self.warm_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_ratio": (self.hits / lookups) if lookups else None,
            }
