"""Per-request deadline budgets and the bounded retry policy.

A :class:`DeadlineBudget` is one request's wall-clock allowance,
decremented across named phases (queue wait, state warm-up, the step
loop). Phases are charged where the time is actually spent, so a
:class:`~repro.serve.errors.DeadlineExceeded` names the guilty phase —
"spent 4.8 s of a 5 s budget queued" reads very differently from
"spent it compiling".

:class:`RetryPolicy` is the service-level retry loop's schedule:
bounded attempts with exponential backoff plus *deterministic* seeded
jitter (full-jitter style: sleep is uniform in ``[0, base * 2**k]``,
drawn from a per-request stream that is a pure function of (service
seed, request id, attempt) — a replayed chaos run backs off
identically). A sleep is always clipped to the remaining budget: the
retry machinery never spends time the deadline doesn't have.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Optional

from repro.serve.errors import DeadlineExceeded

__all__ = ["DeadlineBudget", "RetryPolicy"]


class DeadlineBudget:
    """A request's wall-clock budget, phase-attributed.

    ``clock`` is injectable for tests (defaults to
    :func:`time.monotonic`). ``None``/``inf`` deadline disables
    enforcement but still records the phase breakdown.
    """

    def __init__(self, deadline: Optional[float], request_id: int = 0,
                 clock: Callable[[], float] = time.monotonic):
        self.deadline = (
            float("inf") if deadline is None else float(deadline)
        )
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        self.request_id = request_id
        self._clock = clock
        self._start = clock()
        self.phases: Dict[str, float] = {}
        self._phase_name: Optional[str] = None
        self._phase_start = 0.0

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (may be negative once overdrawn)."""
        return self.deadline - self.elapsed()

    @property
    def exhausted(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, phase: Optional[str] = None) -> float:
        """Return the remaining budget, or raise
        :class:`DeadlineExceeded` attributing the current phase."""
        remaining = self.remaining()
        if remaining <= 0.0:
            blamed = phase or self._phase_name or "unknown"
            self._close_phase()
            raise DeadlineExceeded(
                self.request_id, self.deadline, self.elapsed(),
                blamed, self.phases,
            )
        return remaining

    # ------------------------------------------------------------------
    def phase(self, name: str) -> "_PhaseGuard":
        """Enter a named accounting phase (context manager). Phases are
        sequential, not nested: entering one closes the previous."""
        return _PhaseGuard(self, name)

    def _open_phase(self, name: str) -> None:
        self._close_phase()
        self._phase_name = name
        self._phase_start = self._clock()

    def _close_phase(self) -> None:
        if self._phase_name is not None:
            spent = self._clock() - self._phase_start
            self.phases[self._phase_name] = (
                self.phases.get(self._phase_name, 0.0) + spent
            )
            self._phase_name = None

    def charge(self, name: str, seconds: float) -> None:
        """Attribute externally measured time (e.g. queue wait) to a
        phase without running inside it."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def exceeded(self, phase: Optional[str] = None) -> DeadlineExceeded:
        """Build the typed error for the current state (for callers
        that detect exhaustion themselves)."""
        blamed = phase or self._phase_name or "unknown"
        self._close_phase()
        return DeadlineExceeded(
            self.request_id, self.deadline, self.elapsed(),
            blamed, self.phases,
        )


class _PhaseGuard:
    __slots__ = ("_budget", "_name")

    def __init__(self, budget: DeadlineBudget, name: str):
        self._budget = budget
        self._name = name

    def __enter__(self) -> DeadlineBudget:
        self._budget._open_phase(self._name)
        return self._budget

    def __exit__(self, *exc) -> bool:
        self._budget._close_phase()
        return False


class RetryPolicy:
    """Bounded retry with exponential backoff + deterministic jitter.

    Attributes:
        max_retries: re-attempts after the first try (0 = fail fast).
        backoff_base: backoff before retry ``k`` (1-indexed) is drawn
            uniformly from ``[0, backoff_base * 2**(k-1)]`` (full
            jitter; 0 disables sleeping).
        max_backoff: cap on any single sleep.
        seed: root of the jitter stream.
    """

    def __init__(self, max_retries: int = 2, backoff_base: float = 0.0,
                 max_backoff: float = 1.0, seed: int = 0):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.max_backoff = float(max_backoff)
        self.seed = int(seed)

    def backoff(self, request_id: int, attempt: int) -> float:
        """The sleep before retry ``attempt`` (1-indexed), a pure
        function of (policy seed, request id, attempt)."""
        if self.backoff_base <= 0.0 or attempt < 1:
            return 0.0
        # string seeds are hashed with sha512 inside Random — stable
        # across processes, unlike hash() of a tuple
        rng = random.Random(f"{self.seed}:{request_id}:{attempt}")
        ceiling = min(
            self.backoff_base * 2 ** (attempt - 1), self.max_backoff
        )
        return rng.uniform(0.0, ceiling)

    def sleep(self, request_id: int, attempt: int,
              budget: Optional[DeadlineBudget] = None,
              sleeper: Callable[[float], None] = time.sleep) -> float:
        """Back off before retry ``attempt``, clipped to the remaining
        deadline budget; returns the seconds actually slept."""
        delay = self.backoff(request_id, attempt)
        if budget is not None:
            # leave headroom so the retry itself has budget to run in
            delay = max(0.0, min(delay, budget.remaining() * 0.5))
        if delay > 0.0:
            sleeper(delay)
        return delay
