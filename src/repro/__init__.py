"""repro — reproduction of "Productive Performance Engineering for Weather
and Climate Modeling with Python" (SC'22).

Subpackages:

- :mod:`repro.dsl` — GT4Py-like declarative stencil DSL.
- :mod:`repro.sdfg` — DaCe-like data-centric IR, transformations, codegen.
- :mod:`repro.orchestration` — whole-program SDFG construction.
- :mod:`repro.core` — the optimization methodology: machine models,
  performance bounds, auto-tuning and transfer tuning, the Fig. 7 pipeline.
- :mod:`repro.fv3` — the ported FV3 dynamical core and its substrate
  (cubed-sphere grid, halo exchange, simulated communicator).
- :mod:`repro.scenarios` — named, reference-checked experiment
  definitions (initial conditions, perturbation recipes, physics
  checks) in a process-wide registry.
- :mod:`repro.run` — the unified experiment facade: single runs and
  batched ensembles through ``run(scenario, config, steps,
  members=N, executor=...)``.
"""

__version__ = "1.0.0"
