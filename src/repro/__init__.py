"""repro — reproduction of "Productive Performance Engineering for Weather
and Climate Modeling with Python" (SC'22).

Subpackages:

- :mod:`repro.dsl` — GT4Py-like declarative stencil DSL.
- :mod:`repro.sdfg` — DaCe-like data-centric IR, transformations, codegen.
- :mod:`repro.orchestration` — whole-program SDFG construction.
- :mod:`repro.core` — the optimization methodology: machine models,
  performance bounds, auto-tuning and transfer tuning, the Fig. 7 pipeline.
- :mod:`repro.fv3` — the ported FV3 dynamical core and its substrate
  (cubed-sphere grid, halo exchange, simulated communicator).
"""

__version__ = "1.0.0"
