"""Property-based tests (hypothesis) on core data structures and
numerical invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dsl.extents import Extent
from repro.dsl.storage import StorageSpec, is_aligned, make_storage
from repro.sdfg.subsets import Range

settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")

# ---------------------------------------------------------------------------
# Extent algebra
# ---------------------------------------------------------------------------

extents = st.builds(
    Extent,
    st.integers(-4, 0), st.integers(0, 4),
    st.integers(-4, 0), st.integers(0, 4),
    st.integers(-2, 0), st.integers(0, 2),
)


@given(extents, extents)
def test_extent_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(extents, extents, extents)
def test_extent_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(extents)
def test_extent_union_idempotent(a):
    assert a.union(a) == a
    assert a.union(Extent.zero()).halo_width >= 0


@given(extents, st.tuples(st.integers(-3, 3), st.integers(-3, 3),
                          st.integers(-2, 2)))
def test_extent_shift_normalize_contains_zero(a, offset):
    s = a.shifted(offset).normalized()
    assert s.i_lo <= 0 <= s.i_hi
    assert s.j_lo <= 0 <= s.j_hi


# ---------------------------------------------------------------------------
# Range (memlet subset) algebra
# ---------------------------------------------------------------------------

def ranges(ndim=3):
    def make(dims):
        return Range(tuple((a, a + w) for a, w in dims))

    return st.builds(
        make,
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)),
            min_size=ndim, max_size=ndim,
        ),
    )


@given(ranges(), ranges())
def test_range_union_covers_both(a, b):
    u = a.union(b)
    assert u.covers(a) and u.covers(b)
    assert u.volume() >= max(a.volume(), b.volume())


@given(ranges(), ranges())
def test_range_intersection_contained(a, b):
    inter = a.intersection(b)
    if inter is not None:
        assert a.covers(inter) and b.covers(inter)
        assert inter.volume() <= min(a.volume(), b.volume())


@given(ranges(), st.tuples(st.integers(-5, 5), st.integers(-5, 5),
                           st.integers(-5, 5)))
def test_range_translation_preserves_volume(a, offset):
    assert a.translated(offset).volume() == a.volume()


# ---------------------------------------------------------------------------
# Storage allocation (Fig. 8)
# ---------------------------------------------------------------------------

@given(
    st.tuples(st.integers(2, 20), st.integers(2, 20), st.integers(1, 10)),
    st.sampled_from([8, 16, 32, 64, 128]),
    st.sampled_from(["F", "C"]),
)
def test_storage_alignment_always_satisfied(shape, alignment, layout):
    idx = (1, 1, 0)
    arr = make_storage(
        shape,
        spec=StorageSpec(layout=layout, alignment_bytes=alignment),
        aligned_index=idx,
    )
    assert arr.shape == shape
    assert is_aligned(arr, idx, alignment)
    # layout property
    if layout == "F":
        assert arr.strides[0] == arr.itemsize
    else:
        assert arr.strides[-1] == arr.itemsize


# ---------------------------------------------------------------------------
# PPM transport invariants
# ---------------------------------------------------------------------------

@given(
    hnp.arrays(
        np.float64, (14, 3, 2),
        elements=st.floats(-10, 10, allow_nan=False),
    ),
    st.floats(-0.95, 0.95),
)
def test_ppm_flux_bounded_by_stencil_window(q, c):
    from repro.fv3.stencils.xppm import xppm_flux

    cr = np.full(q.shape, c)
    flux = np.zeros_like(q)
    xppm_flux(q, cr, flux, origin=(3, 0, 0), domain=(8, 3, 2))
    for i in range(3, 11):
        window = q[i - 3 : i + 2]
        assert np.all(flux[i] >= window.min(axis=0) - 1e-9)
        assert np.all(flux[i] <= window.max(axis=0) + 1e-9)


@given(st.floats(-5, 5, allow_nan=False), st.floats(-0.9, 0.9))
def test_ppm_flux_constant_preservation(value, c):
    from repro.fv3.stencils.xppm import xppm_flux

    q = np.full((12, 2, 1), value)
    cr = np.full(q.shape, c)
    flux = np.zeros_like(q)
    xppm_flux(q, cr, flux, origin=(3, 0, 0), domain=(7, 2, 1))
    np.testing.assert_allclose(flux[3:-2], value, atol=1e-12)


# ---------------------------------------------------------------------------
# Tridiagonal solver vs scipy on random diagonally dominant systems
# ---------------------------------------------------------------------------

@given(
    hnp.arrays(np.float64, (2, 1, 12),
               elements=st.floats(0.05, 2.0)),
    hnp.arrays(np.float64, (2, 1, 12),
               elements=st.floats(0.05, 2.0)),
    hnp.arrays(np.float64, (2, 1, 12),
               elements=st.floats(-5.0, 5.0)),
)
def test_tridiagonal_matches_scipy(aa, cc, dd):
    from repro.fv3 import reference
    from repro.fv3.stencils.riem_solver_c import tridiagonal_solve

    aa = aa.copy()
    cc = cc.copy()
    aa[..., 0] = 0.0
    cc[..., -1] = 0.0
    bb = 1.0 + aa + cc
    w = np.zeros_like(dd)
    gam = np.zeros_like(dd)
    tridiagonal_solve(aa, bb, cc, dd, w, gam,
                      origin=(0, 0, 0), domain=dd.shape)
    ref = reference.thomas_tridiagonal(aa, bb, cc, dd)
    np.testing.assert_allclose(w, ref, rtol=1e-9, atol=1e-10)


# ---------------------------------------------------------------------------
# Conservative vertical remap
# ---------------------------------------------------------------------------

@given(
    hnp.arrays(np.float64, (2, 2, 8), elements=st.floats(-3, 3)),
    hnp.arrays(np.float64, (2, 2, 8), elements=st.floats(-0.2, 0.2)),
)
def test_remap_conserves_column_mass(q, noise):
    from repro.fv3.stencils.remapping import (
        interface_pressures,
        remap_layer,
        target_levels,
    )

    nx, ny, nk = q.shape
    ptop = 100.0
    delp = 1000.0 * (1.0 + noise)
    pe1 = np.zeros((nx, ny, nk + 1))
    pe2 = np.zeros((nx, ny, nk + 1))
    q_new = np.zeros_like(q)
    bk = np.linspace(0.0, 1.0, nk + 1)
    interface_pressures(delp, pe1, ptop,
                        origin=(0, 0, 0), domain=(nx, ny, nk + 1))
    target_levels(pe1, pe2, bk, ptop,
                  origin=(0, 0, 0), domain=(nx, ny, nk + 1))
    remap_layer(q, q_new, pe1, pe2, origin=(0, 0, 0), domain=q.shape)
    mass_src = np.sum(q * np.diff(pe1, axis=-1), axis=-1)
    mass_dst = np.sum(q_new * np.diff(pe2, axis=-1), axis=-1)
    np.testing.assert_allclose(mass_dst, mass_src, rtol=1e-10, atol=1e-7)


# ---------------------------------------------------------------------------
# Transformation correctness on randomized inputs
# ---------------------------------------------------------------------------

@given(
    hnp.arrays(np.float64, (10, 8, 3), elements=st.floats(-5, 5)),
    st.floats(-3, 3),
)
def test_otf_fusion_equivalence_random_inputs(a, scale):
    from repro.dsl import Field, PARALLEL, computation, interval, stencil
    from repro.sdfg import SDFG
    from repro.sdfg.codegen import compile_sdfg
    from repro.sdfg.nodes import StencilComputation
    from repro.sdfg.transformations import OTFMapFusion

    @stencil
    def produce(x: Field, t: Field, s: float):
        with computation(PARALLEL), interval(...):
            t = x * s + 1.0

    @stencil
    def consume(t: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = t[-1, 0, 0] + t[1, 0, 0]

    def build():
        sdfg = SDFG("p")
        sdfg.add_array("x", a.shape)
        sdfg.add_array("out", a.shape)
        sdfg.add_transient("t", a.shape)
        state = sdfg.add_state("s0")
        state.add(StencilComputation(
            produce.definition, produce.extents,
            mapping={"x": "x", "t": "t"}, domain=(10, 8, 3),
            origin=(0, 0, 0), scalar_mapping={"s": "s"},
        ))
        state.add(StencilComputation(
            consume.definition, consume.extents,
            mapping={"t": "t", "out": "out"}, domain=(8, 8, 3),
            origin=(1, 0, 0),
        ))
        sdfg.expand_library_nodes()
        return sdfg

    def run(sdfg):
        arrays = {"x": a.copy(), "out": np.zeros(a.shape)}
        compile_sdfg(sdfg)(arrays=arrays, scalars={"s": scale})
        return arrays["out"]

    plain = run(build())
    fused_sdfg = build()
    assert OTFMapFusion().apply_first(fused_sdfg)
    fused = run(fused_sdfg)
    np.testing.assert_allclose(plain, fused, rtol=1e-13, atol=1e-13)


# ---------------------------------------------------------------------------
# Preprocessor constant folding
# ---------------------------------------------------------------------------

@given(st.integers(0, 5), st.integers(-10, 10))
def test_preprocessor_unroll_matches_python(n, base):
    import ast

    from repro.orchestration.closure import get_function_ast
    from repro.orchestration.preprocessor import preprocess_function

    def f():
        acc = BASE  # noqa: F821
        for i in range(N):  # noqa: F821
            acc = acc + i
        return acc

    out = preprocess_function(
        get_function_ast(f), {"N": n, "BASE": base}
    )
    namespace = {}
    exec(compile(ast.Module(body=[out], type_ignores=[]), "<t>", "exec"),
         namespace)
    assert namespace["f"]() == base + sum(range(n))
