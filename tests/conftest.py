"""Shared fixtures for the test suite.

Tests marked ``@pytest.mark.traced`` run with ``repro.obs`` tracing
enabled on a freshly reset default tracer; the previous tracer state
(enabled flag and recorded span tree) is restored afterwards, so a
``REPRO_TRACE=1 python -m pytest`` run — the traced variant of tier-1 —
keeps its own accumulated spans across unmarked tests.
"""

import pytest

from repro.obs import tracer as _tracer_mod


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "traced: run the test with repro.obs tracing enabled on a "
        "fresh span tree (previous tracer state restored afterwards)",
    )


@pytest.fixture(autouse=True)
def _traced_marker(request):
    if request.node.get_closest_marker("traced") is None:
        yield
        return
    tracer = _tracer_mod.get_tracer()
    saved = (tracer.enabled, tracer.root, tracer._stack)
    tracer.reset()
    tracer.enable()
    try:
        yield
    finally:
        tracer.enabled, tracer.root, tracer._stack = saved
