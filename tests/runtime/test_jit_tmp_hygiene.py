"""JIT disk-cache tmp hygiene (PR 10 satellite): failed builds must not
leak ``*.so.tmp<pid>`` files, and stale tmps from dead builders are
swept when the cache is opened."""

import os
import time

import pytest

from repro.runtime import jit


def _touch(path, age_seconds=0.0):
    with open(path, "wb") as fh:
        fh.write(b"\x7fELF junk")
    if age_seconds:
        old = time.time() - age_seconds
        os.utime(path, (old, old))


def test_sweep_removes_tmp_of_dead_pid(tmp_path):
    dead = os.getpid()
    # find a pid that does not exist
    while jit._pid_alive(dead):
        dead += 7919
        if dead > 4_000_000:
            pytest.skip("could not find a free pid")
    victim = tmp_path / f"repro_abc.so.tmp{dead}"
    _touch(str(victim))
    removed = jit.sweep_stale_tmps(str(tmp_path))
    assert str(victim) in removed
    assert not victim.exists()


def test_sweep_keeps_fresh_tmp_of_live_pid(tmp_path):
    # pid 1 is always alive and never ours: a live concurrent builder
    fresh = tmp_path / "repro_abc.so.tmp1"
    _touch(str(fresh))
    removed = jit.sweep_stale_tmps(str(tmp_path))
    assert removed == []
    assert fresh.exists()


def test_sweep_reaps_ancient_tmp_even_if_pid_looks_alive(tmp_path):
    # pid reuse cover: an hour-old tmp is abandoned regardless of pid
    ancient = tmp_path / "repro_abc.so.tmp1"
    _touch(str(ancient), age_seconds=3600.0)
    removed = jit.sweep_stale_tmps(str(tmp_path), max_age_seconds=600.0)
    assert str(ancient) in removed


def test_sweep_removes_own_pid_tmp(tmp_path):
    # our own pid suffix means *we* died mid-build last time this pid
    # existed — or a previous compile_c in this process failed; either
    # way the tmp is garbage
    mine = tmp_path / f"repro_abc.so.tmp{os.getpid()}"
    _touch(str(mine))
    removed = jit.sweep_stale_tmps(str(tmp_path))
    assert str(mine) in removed


def test_sweep_ignores_non_tmp_files(tmp_path):
    keep = tmp_path / "repro_abc.so"
    _touch(str(keep))
    keep_c = tmp_path / "repro_abc.c"
    _touch(str(keep_c))
    assert jit.sweep_stale_tmps(str(tmp_path)) == []
    assert keep.exists() and keep_c.exists()


def test_jit_dir_sweeps_once_per_process(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_JIT_DIR", str(tmp_path))
    monkeypatch.setattr(jit, "_TMP_SWEPT", False)
    dead = os.getpid()
    while jit._pid_alive(dead):
        dead += 7919
        if dead > 4_000_000:
            pytest.skip("could not find a free pid")
    victim = tmp_path / f"repro_x.so.tmp{dead}"
    _touch(str(victim))
    jit.jit_dir()
    assert not victim.exists()
    # second open does not re-sweep (guard flipped)
    _touch(str(victim))
    jit.jit_dir()
    assert victim.exists()
    victim.unlink()


def test_failed_compile_leaves_no_tmp(tmp_path, monkeypatch):
    if jit._find_cc() is None:
        pytest.skip("no C compiler available")
    monkeypatch.setenv("REPRO_JIT_DIR", str(tmp_path))
    monkeypatch.setattr(jit, "_TMP_SWEPT", True)
    with pytest.raises(jit.JitCompileError):
        jit.compile_c("this is not C at all {{{")
    leftovers = [
        name for name in os.listdir(tmp_path) if ".so.tmp" in name
    ]
    assert leftovers == []
