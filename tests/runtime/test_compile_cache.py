"""Unit tests for the compiled-program cache (repro.runtime.compile_cache)."""

import numpy as np
import pytest

from repro.dsl import Field, PARALLEL, computation, interval, stencil
from repro.dsl.backend_dataflow import DataflowStencilExecutor
from repro.runtime import compile_cache as cc


@pytest.fixture(autouse=True)
def _clean_cache():
    cc.reset(clear=True)
    yield
    cc.reset(clear=True)


@stencil
def _axpy(a: Field, b: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = a * 2.0 + b


def _build_sdfg(domain=(6, 6, 3)):
    ex = DataflowStencilExecutor(_axpy)
    shapes = {n: (8, 8, 4) for n in ("a", "b", "out")}
    return ex.build_sdfg(
        shapes, {n: np.float64 for n in shapes}, (0, 0, 0), domain
    )


def test_content_equal_sdfgs_share_a_program():
    p1 = cc.get_or_compile(_build_sdfg())
    p2 = cc.get_or_compile(_build_sdfg())
    assert p2 is p1
    stats = cc.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["bytes_saved"] == p1.runtime_bytes > 0


def test_different_content_misses():
    cc.get_or_compile(_build_sdfg((6, 6, 3)))
    cc.get_or_compile(_build_sdfg((5, 6, 3)))
    stats = cc.stats()
    assert stats["hits"] == 0 and stats["misses"] == 2


def test_instrument_flag_is_part_of_the_key():
    p1 = cc.get_or_compile(_build_sdfg(), instrument=False)
    p2 = cc.get_or_compile(_build_sdfg(), instrument=True)
    assert p2 is not p1
    assert cc.stats()["misses"] == 2


def test_cache_key_is_deterministic():
    k1 = cc.cache_key(_build_sdfg())
    k2 = cc.cache_key(_build_sdfg())
    assert k1 == k2
    assert k1 != cc.cache_key(_build_sdfg((5, 6, 3)))


def test_backend_is_part_of_the_key(monkeypatch):
    """NumPy and compiled plans for content-equal SDFGs never collide."""
    monkeypatch.setenv("REPRO_JIT", "pyloops")
    from repro.runtime import jit

    jit.reset(engine=True)
    try:
        p_np = cc.get_or_compile(_build_sdfg(), backend="numpy")
        p_c = cc.get_or_compile(_build_sdfg(), backend="compiled")
        assert p_c is not p_np
        assert type(p_c).__name__ == "CompiledPlan"
        stats = cc.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0
        assert stats["by_backend"]["numpy"]["misses"] == 1
        assert stats["by_backend"]["compiled"]["misses"] == 1
        # a second compiled request hits its own entry
        assert cc.get_or_compile(_build_sdfg(), backend="compiled") is p_c
        assert cc.stats()["by_backend"]["compiled"]["hits"] == 1
    finally:
        jit.reset(engine=True)


def test_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown compile backend"):
        cc.get_or_compile(_build_sdfg(), backend="fortran")


def test_disabled_cache_compiles_fresh(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
    p1 = cc.get_or_compile(_build_sdfg())
    p2 = cc.get_or_compile(_build_sdfg())
    assert p2 is not p1
    assert cc.stats()["hits"] == 0 and cc.stats()["misses"] == 0


def test_lru_eviction(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE_SIZE", "2")
    cc.get_or_compile(_build_sdfg((6, 6, 3)))
    cc.get_or_compile(_build_sdfg((5, 6, 3)))
    cc.get_or_compile(_build_sdfg((4, 6, 3)))  # evicts the (6, 6, 3) entry
    assert cc.stats()["entries"] == 2
    cc.get_or_compile(_build_sdfg((6, 6, 3)))
    assert cc.stats()["misses"] == 4  # recompiled after eviction


def test_cached_program_results_are_correct():
    sdfg = _build_sdfg()
    prog = cc.get_or_compile(sdfg)
    rng = np.random.default_rng(0)
    a = rng.random((8, 8, 4))
    b = rng.random((8, 8, 4))
    out = np.zeros((8, 8, 4))
    cc.get_or_compile(_build_sdfg())(arrays={"a": a, "b": b, "out": out})
    np.testing.assert_array_equal(out[:6, :6, :3], (a * 2.0 + b)[:6, :6, :3])
    assert cc.stats()["hits"] == 1


def test_tuning_loop_shows_cache_hits_in_obs_report():
    """Repeated candidate timings hit the cache, visible as sdfg.compile
    spans with cache=hit and in the report footer."""
    import json

    from repro import obs
    from repro.obs.report import report, to_json
    from repro.sdfg.cutout import Cutout, time_cutout

    sdfg = _build_sdfg()
    cut = Cutout(sdfg, inputs=["a", "b"], outputs=["out"],
                 source_state=sdfg.states[0].name)
    obs.enable()
    try:
        time_cutout(cut, repetitions=1)
        time_cutout(cut, repetitions=1)
    finally:
        obs.disable()
    assert cc.stats()["hits"] >= 1
    payload = json.loads(to_json())
    assert payload["runtime"]["compile_cache"]["hits"] >= 1
    text = report()
    assert "compile cache:" in text
