"""Cooperative cancellation on the buffer arena: a
:meth:`BufferPool.cancel_scope` returns still-live checkouts to the pool
when the scope dies with an exception — the serving layer's guarantee
that a cancelled or faulted request never leaks scratch buffers from a
long-lived worker."""

import threading

import numpy as np
import pytest

from repro.runtime.pool import BufferPool


@pytest.fixture
def pool():
    return BufferPool(recycle=True)


def test_exception_reclaims_live_checkouts(pool):
    with pytest.raises(RuntimeError):
        with pool.cancel_scope("req1") as scope:
            a = pool.checkout((8,))
            b = pool.checkout((4,), np.float32)
            raise RuntimeError("fault mid-kernel")
    assert scope.reclaimed == 2
    assert pool.stats()["scope_reclaims"] == 2
    # the buffers are genuinely back in the arena: same-shape checkouts
    # are reuse hits, not allocations
    allocs = pool.allocations
    again = pool.checkout((8,))
    assert pool.allocations == allocs
    assert again is a
    pool.release(again)
    pool.release(pool.checkout((4,), np.float32))
    del b


def test_clean_exit_releases_nothing(pool):
    with pool.cancel_scope("req2") as scope:
        kept = pool.checkout((16,))
    assert scope.reclaimed == 0
    assert pool.stats()["scope_reclaims"] == 0
    # the retained buffer is still the caller's: a fresh checkout of the
    # same shape must not alias it
    other = pool.checkout((16,))
    assert other is not kept
    pool.release(kept)
    pool.release(other)


def test_released_buffers_are_untracked(pool):
    """A checkout already returned inside the scope is not re-released
    on cancellation (no double-free into the free list)."""
    with pytest.raises(ValueError):
        with pool.cancel_scope() as scope:
            buf = pool.checkout((8,))
            pool.release(buf)
            raise ValueError("late fault")
    assert scope.reclaimed == 0
    idle = pool.stats()["idle_bytes"]
    assert idle == buf.nbytes  # exactly one copy in the arena


def test_clean_inner_exit_hands_coverage_to_outer_scope(pool):
    """Nesting: a buffer retained past a clean inner scope is still
    covered by the enclosing scope's cancellation."""
    with pytest.raises(RuntimeError):
        with pool.cancel_scope("outer") as outer:
            with pool.cancel_scope("inner") as inner:
                pool.checkout((8,))
            raise RuntimeError("outer fault")
    assert inner.reclaimed == 0
    assert outer.reclaimed == 1
    assert pool.stats()["scope_reclaims"] == 1


def test_inner_exception_reclaims_only_inner_checkouts(pool):
    outer_buf = None
    with pool.cancel_scope("outer") as outer:
        outer_buf = pool.checkout((32,))
        with pytest.raises(RuntimeError):
            with pool.cancel_scope("inner") as inner:
                pool.checkout((8,))
                raise RuntimeError("inner fault")
        assert inner.reclaimed == 1
    assert outer.reclaimed == 0  # outer exited cleanly, kept its buffer
    pool.release(outer_buf)


def test_scopes_must_exit_lifo(pool):
    outer = pool.cancel_scope("outer")
    inner = pool.cancel_scope("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError, match="LIFO"):
        outer.__exit__(None, None, None)
    inner.__exit__(None, None, None)
    outer.__exit__(None, None, None)


def test_other_threads_checkouts_not_reclaimed(pool):
    """Scopes are per-thread: a concurrent worker's checkout is not
    yanked back by this thread's cancellation."""
    grabbed = {}

    def worker():
        grabbed["buf"] = pool.checkout((64,))

    with pytest.raises(RuntimeError):
        with pool.cancel_scope("mine") as scope:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            raise RuntimeError("cancel me")
    assert scope.reclaimed == 0
    # the worker's buffer is still live — releasing it is its business
    other = pool.checkout((64,))
    assert other is not grabbed["buf"]
    pool.release(other)
    pool.release(grabbed["buf"])
