"""Unit tests for the scratch buffer arena (repro.runtime.pool)."""

import numpy as np
import pytest

from repro.runtime.pool import BufferPool, get_pool


def test_checkout_release_roundtrip_reuses_buffer():
    pool = BufferPool()
    a = pool.checkout((4, 3))
    pool.release(a)
    b = pool.checkout((4, 3))
    assert b is a
    assert pool.reuse_hits == 1
    assert pool.allocations == 1


def test_live_buffers_never_alias():
    pool = BufferPool()
    a = pool.checkout((8, 8))
    b = pool.checkout((8, 8))
    assert a is not b
    a[...] = 1.0
    b[...] = 2.0
    assert float(a[0, 0]) == 1.0  # no shared storage
    pool.release(a)
    pool.release(b)
    # after release both come back, still distinct objects
    c = pool.checkout((8, 8))
    d = pool.checkout((8, 8))
    assert c is not d
    assert {id(c), id(d)} == {id(a), id(b)}


def test_keying_is_exact_shape_and_dtype():
    pool = BufferPool()
    a = pool.checkout((4, 4))
    pool.release(a)
    assert pool.checkout((4, 4), np.float32) is not a
    assert pool.checkout((2, 8)) is not a  # same size, different shape
    assert pool.checkout((4, 4)) is a


def test_double_release_raises():
    pool = BufferPool()
    a = pool.checkout((2, 2))
    pool.release(a)
    with pytest.raises(ValueError, match="released twice"):
        pool.release(a)


def test_releasing_a_view_raises():
    pool = BufferPool()
    a = pool.checkout((4, 4))
    with pytest.raises(ValueError, match="view"):
        pool.release(a[:2])
    pool.release(a)


def test_high_water_and_byte_accounting():
    pool = BufferPool()
    nbytes = 4 * 4 * 8
    a = pool.checkout((4, 4))
    b = pool.checkout((4, 4))
    assert pool.live_bytes == 2 * nbytes
    assert pool.high_water_bytes == 2 * nbytes
    pool.release(a)
    pool.release(b)
    assert pool.live_bytes == 0
    assert pool.idle_bytes == 2 * nbytes
    c = pool.checkout((4, 4))
    assert pool.alloc_bytes_avoided == nbytes
    stats = pool.stats()
    assert stats["checkouts"] == 3
    assert stats["allocations"] == 2
    assert stats["high_water_bytes"] == 2 * nbytes
    pool.release(c)


def test_checkout_many_release_many():
    pool = BufferPool()
    specs = [((3, 3), np.dtype(np.float64)), ((2,), np.dtype(np.int64))]
    bufs = pool.checkout_many(specs)
    assert [b.shape for b in bufs] == [(3, 3), (2,)]
    assert [b.dtype for b in bufs] == [np.float64, np.int64]
    pool.release_many(bufs)
    again = pool.checkout_many(specs)
    assert [id(b) for b in again] == [id(b) for b in bufs]


def test_recycling_disabled_still_accounts():
    pool = BufferPool(recycle=False)
    a = pool.checkout((4, 4))
    pool.release(a)
    b = pool.checkout((4, 4))
    assert b is not a
    assert pool.reuse_hits == 0
    assert pool.allocations == 2


def test_clear_drops_idle_buffers():
    pool = BufferPool()
    a = pool.checkout((4, 4))
    pool.release(a)
    pool.clear()
    assert pool.idle_bytes == 0
    assert pool.checkout((4, 4)) is not a


def test_process_pool_is_shared():
    assert get_pool() is get_pool()
