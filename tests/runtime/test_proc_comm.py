"""ProcComm semantics: the shared-memory mailbox must behave exactly
like ``LocalComm`` — MPI-style (source, dest, tag) matching, eager
copy-out on send, flow control on occupied keys, absence budgets, drain
scoping and the message log."""

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.resilience.errors import HaloTimeoutError, OrphanedMessagesWarning
from repro.runtime.procs import ProcComm, ShmTransport


@pytest.fixture()
def transport():
    ctx = multiprocessing.get_context()
    t = ShmTransport.create(n_slots=4, slot_bytes=8192, ctx=ctx)
    yield t
    t.close()


@pytest.fixture()
def comm(transport):
    c = ProcComm(transport, size=6)
    c.max_polls = 4
    c.poll_interval = 0.01
    return c


def test_roundtrip_preserves_shape_dtype_and_bits(comm):
    rng = np.random.default_rng(3)
    for payload in (
        rng.random((5, 7)),
        rng.random((3, 4, 5)),
        rng.random((8,)).astype(np.float32),
        np.arange(12, dtype=np.int64).reshape(3, 4),
    ):
        comm.Isend(payload, source=0, dest=1, tag=42)
        out = np.empty_like(payload)
        comm.Irecv(out, source=0, dest=1, tag=42).wait()
        np.testing.assert_array_equal(out, payload)
        assert out.dtype == payload.dtype


def test_send_is_an_eager_copy(comm):
    buf = np.ones((4, 4))
    comm.Isend(buf, source=0, dest=1, tag=1)
    buf[:] = -7.0  # mutate after post: receiver must see the snapshot
    out = np.empty_like(buf)
    comm.Irecv(out, source=0, dest=1, tag=1).wait()
    np.testing.assert_array_equal(out, np.ones((4, 4)))


def test_tag_and_source_matching(comm):
    comm.Isend(np.full((2, 2), 1.0), source=0, dest=1, tag=5)
    comm.Isend(np.full((2, 2), 2.0), source=2, dest=1, tag=5)
    comm.Isend(np.full((2, 2), 3.0), source=0, dest=1, tag=6)
    out = np.empty((2, 2))
    comm.Irecv(out, source=2, dest=1, tag=5).wait()
    assert out[0, 0] == 2.0
    comm.Irecv(out, source=0, dest=1, tag=6).wait()
    assert out[0, 0] == 3.0
    comm.Irecv(out, source=0, dest=1, tag=5).wait()
    assert out[0, 0] == 1.0


def test_absent_message_times_out_with_pending_keys(comm):
    comm.Isend(np.zeros(3), source=0, dest=2, tag=9)
    out = np.empty(3)
    with pytest.raises(HaloTimeoutError) as err:
        comm.Irecv(out, source=1, dest=2, tag=9).wait()
    assert (0, 2, 9) in err.value.pending


def test_duplicate_key_send_blocks_until_receiver_drains(comm):
    comm.max_polls = 100  # budget must outlast the late receiver
    comm.Isend(np.full(4, 1.0), source=0, dest=1, tag=7)
    received = []

    def late_receiver():
        time.sleep(0.05)
        out = np.empty(4)
        comm.Irecv(out, source=0, dest=1, tag=7).wait()
        received.append(out[0])

    thread = threading.Thread(target=late_receiver)
    thread.start()
    # blocks until the receiver drains the first message, then lands
    comm.Isend(np.full(4, 2.0), source=0, dest=1, tag=7)
    thread.join()
    assert received == [1.0]
    out = np.empty(4)
    comm.Irecv(out, source=0, dest=1, tag=7).wait()
    assert out[0] == 2.0


def test_duplicate_key_send_raises_after_budget(comm):
    comm.Isend(np.zeros(2), source=0, dest=1, tag=3)
    with pytest.raises(RuntimeError, match="already in flight"):
        comm.Isend(np.zeros(2), source=0, dest=1, tag=3)


def test_mailbox_full_raises_after_budget(transport):
    comm = ProcComm(transport, size=6)
    comm.max_polls = 3
    comm.poll_interval = 0.01
    for tag in range(transport.n_slots):
        comm.Isend(np.zeros(2), source=0, dest=1, tag=tag)
    with pytest.raises(RuntimeError, match="mailbox full"):
        comm.Isend(np.zeros(2), source=0, dest=1, tag=999)


def test_oversized_payload_is_a_clear_error(comm):
    with pytest.raises(ValueError, match="slot capacity"):
        comm.Isend(np.zeros(10_000), source=0, dest=1, tag=0)


def test_latency_defers_delivery(comm):
    comm.latency = 0.08
    t0 = time.monotonic()
    comm.Isend(np.ones(3), source=0, dest=1, tag=2)
    req = comm.Irecv(np.empty(3), source=0, dest=1, tag=2)
    assert not req.test()  # present but not deliverable yet
    req.wait()
    assert time.monotonic() - t0 >= 0.08
    # the latency wait is not charged to the absence budget
    assert comm.timeout < 0.08


def test_drain_is_scoped_to_owned_ranks(transport):
    comm_all = ProcComm(transport, size=6)
    comm_all.Isend(np.zeros(2), source=0, dest=1, tag=0)
    comm_all.Isend(np.zeros(2), source=0, dest=4, tag=0)
    mine = ProcComm(transport, size=6, owned_ranks=(0, 1, 2))
    orphans = mine.drain()
    assert orphans == [(0, 1, 0)]
    assert comm_all.pending() == [(0, 4, 0)]


def test_finalize_warns_on_orphans(comm):
    comm.Isend(np.zeros(2), source=0, dest=1, tag=0)
    with pytest.warns(OrphanedMessagesWarning):
        leftover = comm.finalize()
    assert leftover == [(0, 1, 0)]
    assert comm.pending() == []


def test_message_log_and_byte_accounting(comm):
    comm.Isend(np.zeros(4), source=0, dest=1, tag=0)
    comm.Isend(np.zeros(8), source=0, dest=2, tag=0)
    comm.Isend(np.zeros(2), source=3, dest=0, tag=1)
    assert comm.bytes_by_rank() == {0: 96, 3: 16}
    assert sorted(comm.message_sizes()) == [16, 32, 64]
    assert comm.message_sizes(rank=3) == [16]
    comm.reset_log()
    assert comm.message_sizes() == []
    comm.drain()
