"""JIT disk-cache self-healing: a corrupt cached ``.so`` under
``REPRO_JIT_DIR`` (torn write, disk error, partial copy) triggers a
rebuild-and-overwrite with a once-per-process warning — not a crash on
every subsequent run.

Within one process ``dlopen`` dedups by pathname and returns the
already-loaded (healthy) handle regardless of what is on disk, so the
fresh-process-meets-corrupt-cache scenario cannot be reproduced with a
real ``ctypes.CDLL`` here.  Most tests therefore stub ``CDLL`` to fail
on the planted corrupt payloads — modelling what a fresh process's
``dlopen`` would do — and one end-to-end test runs a genuinely fresh
interpreter against the damaged cache.  Corruption always goes through
unlink-then-write: overwriting the mapped inode in place would SIGBUS
this process.
"""

import ctypes
import json
import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.runtime import jit

SRC = (
    "#include <stdint.h>\n"
    "void add_one(double* x, int64_t n)\n"
    "{ for (int64_t i = 0; i < n; ++i) x[i] += 1.0; }\n"
)

_REAL_CDLL = ctypes.CDLL


@pytest.fixture
def cgen(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_JIT", "cgen")
    monkeypatch.setenv("REPRO_JIT_DIR", str(tmp_path))
    jit.reset(engine=True)
    if jit._find_cc() is None:
        pytest.skip("no C compiler on this machine")
    jit.reset()  # also re-arms the once-per-process corruption warning
    jit._LOADED.clear()  # the content key is the same in every test
    yield tmp_path
    monkeypatch.delenv("REPRO_JIT", raising=False)
    jit.reset(engine=True)


@pytest.fixture
def fresh_dlopen(monkeypatch):
    """Make ``CDLL`` behave like a fresh process's dlopen: corrupt bytes
    planted by :func:`_corrupt` raise ``OSError`` instead of being served
    from the process-wide handle cache."""
    planted = set()

    def cdll(path, *args, **kwargs):
        with open(path, "rb") as fh:
            if fh.read() in planted:
                raise OSError(f"{path}: invalid ELF header")
        return _REAL_CDLL(path, *args, **kwargs)

    monkeypatch.setattr(ctypes, "CDLL", cdll)
    return planted


def _sole_so(cache_dir):
    (sopath,) = cache_dir.glob("*.so")
    return sopath


def _corrupt(sopath, blob, planted):
    # unlink first: the healthy inode may be mmapped by this process
    sopath.unlink()
    sopath.write_bytes(blob)
    planted.add(blob)


def _call(lib):
    fn = lib.add_one
    fn.argtypes = [ctypes.c_void_p, ctypes.c_int64]
    x = np.zeros(3)
    fn(x.ctypes.data, 3)
    return list(x)


def test_corrupt_cached_so_is_rebuilt_in_place(cgen, fresh_dlopen):
    jit.compile_c(SRC)
    sopath = _sole_so(cgen)
    _corrupt(sopath, b"\x7fELF this is not a loadable object", fresh_dlopen)
    jit._LOADED.clear()  # fresh process-level state, stale disk cache

    with pytest.warns(jit.JitCacheWarning, match="rebuil"):
        lib = jit.compile_c(SRC)
    assert _call(lib) == [1.0, 1.0, 1.0]

    stats = jit.stats()
    assert stats["cache_repairs"] == 1
    assert stats["compiles"] == 2  # original + the rebuild
    # the overwritten artifact is healthy again: next load is a disk hit
    jit._LOADED.clear()
    jit.compile_c(SRC)
    assert jit.stats()["disk_hits"] == 1


def test_truncated_so_is_rebuilt(cgen, fresh_dlopen):
    jit.compile_c(SRC)
    sopath = _sole_so(cgen)
    blob = sopath.read_bytes()
    _corrupt(sopath, blob[: len(blob) // 3], fresh_dlopen)
    jit._LOADED.clear()
    with pytest.warns(jit.JitCacheWarning):
        lib = jit.compile_c(SRC)
    assert _call(lib) == [1.0, 1.0, 1.0]


def test_corruption_warning_fires_once_per_process(cgen, fresh_dlopen):
    jit.compile_c(SRC)
    sopath = _sole_so(cgen)

    def corrupt_and_reload(blob):
        _corrupt(sopath, blob, fresh_dlopen)
        jit._LOADED.clear()
        return jit.compile_c(SRC)

    with pytest.warns(jit.JitCacheWarning):
        corrupt_and_reload(b"garbage one")
    with warnings.catch_warnings():
        warnings.simplefilter("error", jit.JitCacheWarning)
        corrupt_and_reload(b"garbage two")  # silent repair the second time
    assert jit.stats()["cache_repairs"] == 2


def test_healthy_cache_never_warns(cgen):
    jit.compile_c(SRC)
    jit._LOADED.clear()
    with warnings.catch_warnings():
        warnings.simplefilter("error", jit.JitCacheWarning)
        jit.compile_c(SRC)
    assert jit.stats()["cache_repairs"] == 0


def test_fresh_process_heals_corrupt_cache(cgen):
    """End to end with a real dlopen: a brand-new interpreter pointed at
    a damaged cache warns once, rebuilds, and computes correctly."""
    jit.compile_c(SRC)
    sopath = _sole_so(cgen)
    sopath.unlink()
    sopath.write_bytes(b"\x7fELF torn write")

    child = (
        "import json, warnings, numpy as np, ctypes\n"
        "from repro.runtime import jit\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        f"    lib = jit.compile_c({SRC!r})\n"
        "fn = lib.add_one\n"
        "fn.argtypes = [ctypes.c_void_p, ctypes.c_int64]\n"
        "x = np.zeros(3)\n"
        "fn(x.ctypes.data, 3)\n"
        "print(json.dumps({\n"
        "    'warned': [str(w.message) for w in caught\n"
        "               if issubclass(w.category, jit.JitCacheWarning)],\n"
        "    'repairs': jit.stats()['cache_repairs'],\n"
        "    'result': list(x),\n"
        "}))\n"
    )
    env = dict(os.environ, REPRO_JIT="cgen", REPRO_JIT_DIR=str(cgen),
               PYTHONPATH="src")
    proc = subprocess.run([sys.executable, "-c", child], env=env,
                          capture_output=True, text=True, cwd="/root/repo")
    assert proc.returncode == 0, proc.stderr
    out = json.loads(proc.stdout)
    assert out["repairs"] == 1
    assert len(out["warned"]) == 1 and "rebuil" in out["warned"][0]
    assert out["result"] == [1.0, 1.0, 1.0]
