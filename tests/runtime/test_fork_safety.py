"""Fork-safety of process-global runtime state (PR 10 satellites).

A forked worker inherits the parent's buffer pool — free lists full of
arrays the parent still owns, counters mid-flight, possibly a held
lock. The ``os.register_at_fork`` hook (plus the pid guard in
``get_pool``) must hand the child a pristine pool; ``merge_stats`` /
``merge_summary`` / jit ``merge_stats`` fold worker counters back into
the parent without double counting.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.runtime import jit, ranks
from repro.runtime.pool import get_pool

fork_ctx = pytest.importorskip("multiprocessing").get_context

if "fork" not in multiprocessing.get_all_start_methods():
    pytest.skip("fork start method unavailable", allow_module_level=True)


def _child_pool_probe(conn):
    pool = get_pool()
    stats = pool.stats()
    # the child may allocate its own buffers without disturbing the
    # parent's free lists
    buf = pool.checkout((16, 16), np.float64)
    pool.release(buf)
    buf2 = pool.checkout((16, 16), np.float64)
    pool.release(buf2)
    conn.send((os.getpid(), stats, pool.stats()))
    conn.close()


def test_forked_child_gets_pristine_pool():
    pool = get_pool()
    parent_buf = pool.checkout((16, 16), np.float64)
    pool.release(parent_buf)
    before = pool.stats()
    assert before["checkouts"] >= 1
    ctx = fork_ctx("fork")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=_child_pool_probe, args=(child_conn,))
    proc.start()
    child_conn.close()
    child_pid, child_stats, child_after = parent_conn.recv()
    proc.join(10)
    assert child_pid != os.getpid()
    # the at-fork hook zeroed every counter before the child's first use
    assert child_stats["checkouts"] == 0
    assert child_stats["allocated_bytes"] == 0
    assert child_stats["high_water_bytes"] == 0
    # and the child's pool works standalone (second checkout reuses)
    assert child_after["checkouts"] == 2
    assert child_after["reuse_hits"] >= 1
    # the parent's accounting is untouched by the child's lifetime
    after = pool.stats()
    assert after["checkouts"] == before["checkouts"]
    assert after["allocated_bytes"] == before["allocated_bytes"]


def test_pool_pid_guard_resets_without_hook():
    """Even if the at-fork hook never ran (spawn-on-exotic-platform,
    embedded interpreters), the pid guard in ``get_pool`` resets a
    pool inherited from another process."""
    pool = get_pool()
    original_pid = pool._pid
    try:
        pool._pid = original_pid - 1  # masquerade as inherited
        fresh = get_pool()
        assert fresh is pool
        assert fresh._pid == os.getpid()
        assert fresh.stats()["checkouts"] == 0
    finally:
        pool._pid = os.getpid()


def test_pool_merge_stats_folds_worker_counters():
    pool = get_pool()
    before = pool.stats()
    pool.merge_stats({
        "checkouts": 5, "reuse_hits": 3, "allocations": 2,
        "allocated_bytes": 1024, "alloc_bytes_avoided": 2048,
        "scope_reclaims": 1, "high_water_bytes": 10 ** 9,
    })
    after = pool.stats()
    assert after["checkouts"] == before["checkouts"] + 5
    assert after["reuse_hits"] == before["reuse_hits"] + 3
    assert after["allocated_bytes"] == before["allocated_bytes"] + 1024
    assert after["high_water_bytes"] == max(
        before["high_water_bytes"], 10 ** 9
    )


def test_ranks_merge_summary_adds_counters_and_maxes_workers():
    ranks.reset_metrics()
    try:
        ranks.merge_summary({
            "workers": 6, "sections": 4, "tasks": 24,
            "section_seconds": 1.5, "exchanges": 8,
            "hidden_seconds": 0.25, "exposed_seconds": 0.75,
        })
        ranks.merge_summary({"workers": 2, "sections": 1, "tasks": 2})
        out = ranks.summary()
        assert out["workers"] == 6
        assert out["sections"] == 5
        assert out["tasks"] == 26
        assert out["exchanges"] == 8
        assert out["overlap_efficiency"] == 0.25
    finally:
        ranks.reset_metrics()


def test_jit_merge_stats_accumulates():
    before = jit.stats()
    jit.merge_stats({
        "compiles": 3, "compile_seconds": 0.5, "disk_hits": 2,
        "cache_repairs": 1,
    })
    after = jit.stats()
    assert after["compiles"] == before["compiles"] + 3
    assert after["disk_hits"] == before["disk_hits"] + 2
    assert after["cache_repairs"] == before["cache_repairs"] + 1
    assert after["compile_seconds"] == pytest.approx(
        before["compile_seconds"] + 0.5
    )
