"""Unit tests for the JIT engine abstraction (repro.runtime.jit)."""

import ctypes
import os

import pytest

from repro.runtime import jit


@pytest.fixture()
def forced_engine(monkeypatch):
    """Force an engine for one test, restoring resolution afterwards."""

    def force(name):
        monkeypatch.setenv("REPRO_JIT", name)
        jit.reset(engine=True)
        return jit.engine_name()

    yield force
    monkeypatch.delenv("REPRO_JIT", raising=False)
    jit.reset(engine=True)


def test_engine_resolution_is_sticky(forced_engine):
    assert forced_engine("pyloops") == "pyloops"
    # a later env change is ignored until reset(engine=True)
    os.environ["REPRO_JIT"] = "none"
    try:
        assert jit.engine_name() == "pyloops"
    finally:
        os.environ.pop("REPRO_JIT", None)
        jit.reset(engine=True)


def test_bogus_forced_engine_raises(forced_engine):
    with pytest.raises(ValueError, match="expected one of"):
        forced_engine("fortran")


def test_none_engine_is_unavailable(forced_engine):
    forced_engine("none")
    assert not jit.available()


def test_compile_py_pyloops_executes(forced_engine):
    forced_engine("pyloops")
    import numpy as np

    src = (
        "def tripler(f_x):\n"
        "    for i in __prange(0, 3):\n"
        "        f_x[i] = f_x[i] * 3.0\n"
        "    return None\n"
    )
    fn = jit.compile_py(src, "tripler")
    x = np.array([1.0, 2.0, 3.0])
    fn(x)
    assert list(x) == [3.0, 6.0, 9.0]


def test_compile_c_roundtrip_and_disk_cache(forced_engine, tmp_path,
                                            monkeypatch):
    forced_engine("cgen")
    if jit._find_cc() is None:
        pytest.skip("no C compiler on this machine")
    monkeypatch.setenv("REPRO_JIT_DIR", str(tmp_path))
    jit.reset()
    src = (
        "#include <stdint.h>\n"
        "void add_one(double* x, int64_t n)\n"
        "{ for (int64_t i = 0; i < n; ++i) x[i] += 1.0; }\n"
    )
    lib = jit.compile_c(src)
    import numpy as np

    x = np.zeros(4)
    fn = lib.add_one
    fn.argtypes = [ctypes.c_void_p, ctypes.c_int64]
    fn(x.ctypes.data, 4)
    assert list(x) == [1.0, 1.0, 1.0, 1.0]
    stats = jit.stats()
    assert stats["compiles"] == 1
    assert stats["compile_seconds"] > 0

    # same source, fresh process-level state → served from disk
    jit._LOADED.clear()
    jit.compile_c(src)
    assert jit.stats()["disk_hits"] == 1


def test_compile_c_reports_compiler_errors(forced_engine, tmp_path,
                                           monkeypatch):
    forced_engine("cgen")
    if jit._find_cc() is None:
        pytest.skip("no C compiler on this machine")
    monkeypatch.setenv("REPRO_JIT_DIR", str(tmp_path))
    with pytest.raises(jit.JitCompileError, match="failed on generated"):
        jit.compile_c("void broken( {")


def test_default_threads_env(monkeypatch):
    monkeypatch.setenv("REPRO_THREADS", "3")
    assert jit.default_threads() == 3
    monkeypatch.setenv("REPRO_THREADS", "0")
    assert jit.default_threads() == 1


def test_stats_reset(forced_engine):
    forced_engine("pyloops")
    jit.record_compile_seconds(0.5, count=2)
    assert jit.stats()["compiles"] >= 2
    jit.reset()
    stats = jit.stats()
    assert stats["compiles"] == 0 and stats["compile_seconds"] == 0.0
