"""Serializable tracer merge (PR 10 satellite): a worker process ships
its span tree as plain dicts over a pipe; the parent folds it under its
own root so one report covers the whole process tree."""

import pickle

from repro.obs.tracer import Tracer


def _build_worker_tracer():
    worker = Tracer("worker", enabled=True)
    with worker.span("ensemble.step") as sp:
        sp.add("members", 2)
        with worker.span("rank[3]"):
            pass
        with worker.span("rank[3]"):
            pass
    with worker.span("halo.exchange") as sp:
        sp.add("cells", 120)
        sp.set("phase_mode", "split")
    return worker


def test_summary_is_picklable_plain_data():
    summary = _build_worker_tracer().summary()
    assert summary["tracer"] == "worker"
    restored = pickle.loads(pickle.dumps(summary))
    assert restored == summary
    names = {span["name"] for span in summary["spans"]}
    assert names == {"ensemble.step", "halo.exchange"}


def test_merge_folds_counts_durations_and_children():
    parent = Tracer("parent", enabled=True)
    with parent.span("ensemble.step") as sp:
        sp.add("members", 1)
    parent.merge(_build_worker_tracer().summary())
    step = parent.root.children["ensemble.step"]
    assert step.count == 2  # parent's own 1 + worker's 1
    assert step.attrs["members"] == 3  # numeric attrs add
    assert step.children["rank[3]"].count == 2
    halo = parent.root.children["halo.exchange"]
    assert halo.count == 1
    assert halo.attrs["cells"] == 120
    assert halo.attrs["phase_mode"] == "split"


def test_merge_twice_accumulates():
    parent = Tracer("parent2", enabled=True)
    summary = _build_worker_tracer().summary()
    parent.merge(summary)
    parent.merge(summary)
    step = parent.root.children["ensemble.step"]
    assert step.count == 2
    assert step.attrs["members"] == 4
    assert step.children["rank[3]"].count == 4


def test_merge_keeps_non_numeric_attrs_first_writer_wins():
    parent = Tracer("parent3", enabled=True)
    with parent.span("halo.exchange") as sp:
        sp.set("phase_mode", "atomic")
    parent.merge(_build_worker_tracer().summary())
    halo = parent.root.children["halo.exchange"]
    assert halo.attrs["phase_mode"] == "atomic"  # not clobbered


def test_merged_durations_accumulate():
    worker = _build_worker_tracer()
    worker_step = worker.root.children["ensemble.step"]
    parent = Tracer("parent4", enabled=True)
    parent.merge(worker.summary())
    merged = parent.root.children["ensemble.step"]
    assert merged.total_seconds == worker_step.total_seconds
    parent.merge(worker.summary())
    assert merged.total_seconds == 2 * worker_step.total_seconds
