"""Tracer semantics: nesting, aggregation, no-op path, report/export."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core.machine import HASWELL
from repro.dsl import Field, PARALLEL, computation, interval, stencil
from repro.obs.tracer import _NULL_SPAN, Span, Tracer


# ---------------------------------------------------------------------------
# span recording
# ---------------------------------------------------------------------------
def test_disabled_span_is_shared_noop():
    tracer = Tracer("t", enabled=False)
    a = tracer.span("x")
    b = tracer.span("y")
    assert a is b is _NULL_SPAN
    with a as sp:
        sp.set("k", 1)
        sp.add("n", 2)
    assert not tracer.root.children  # nothing recorded


def test_span_nesting_aggregates_by_parent_and_name():
    tracer = Tracer("t", enabled=True)
    for _ in range(3):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
    assert set(tracer.root.children) == {"outer"}
    outer = tracer.root.children["outer"]
    assert outer.count == 3
    assert set(outer.children) == {"inner"}
    inner = outer.children["inner"]
    assert inner.count == 6  # 2 entries x 3 outer calls, one node
    assert outer.total_seconds >= inner.total_seconds >= 0.0


def test_same_name_under_different_parents_is_distinct():
    tracer = Tracer("t", enabled=True)
    with tracer.span("a"):
        with tracer.span("leaf"):
            pass
    with tracer.span("b"):
        with tracer.span("leaf"):
            pass
    assert tracer.root.children["a"].children["leaf"].count == 1
    assert tracer.root.children["b"].children["leaf"].count == 1


def test_attrs_set_overwrites_and_add_accumulates():
    tracer = Tracer("t", enabled=True)
    for backend in ("numpy", "dataflow"):
        with tracer.span("s") as sp:
            sp.set("backend", backend)
            sp.add("bytes", 100)
    node = tracer.root.children["s"]
    assert node.attrs["backend"] == "dataflow"
    assert node.attrs["bytes"] == 200


def test_self_seconds_excludes_children():
    parent = Span("p")
    parent.total_seconds = 1.0
    parent.child("a").total_seconds = 0.3
    parent.child("b").total_seconds = 0.25
    assert parent.self_seconds == pytest.approx(0.45)


def test_env_toggle_controls_default_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert Tracer("t").enabled
    monkeypatch.setenv("REPRO_TRACE", "off")
    assert not Tracer("t").enabled
    monkeypatch.delenv("REPRO_TRACE")
    assert not Tracer("t").enabled
    assert Tracer("t", enabled=True).enabled  # explicit flag wins


def test_reset_drops_spans_but_keeps_switch():
    tracer = Tracer("t", enabled=True)
    with tracer.span("x"):
        pass
    tracer.reset()
    assert tracer.enabled
    assert not tracer.root.children
    assert tracer.current is tracer.root


def test_timed_measures_even_when_disabled():
    tracer = Tracer("t", enabled=False)
    with tracer.timed("work") as t:
        time.sleep(0.005)
    assert t.seconds >= 0.004
    assert t.span is None  # not recorded
    assert not tracer.root.children

    tracer.enable()
    with tracer.timed("work") as t:
        pass
    assert isinstance(t.span, Span)
    assert tracer.root.children["work"].count == 1


@pytest.mark.traced
def test_traced_marker_enables_default_tracer():
    assert obs.enabled()
    with obs.span("marked") as sp:
        sp.add("n", 1)
    assert obs.get_tracer().root.children["marked"].attrs["n"] == 1


def test_get_tracer_registry_is_process_wide():
    assert obs.get_tracer("some-other") is obs.get_tracer("some-other")
    assert obs.get_tracer() is obs.get_tracer("repro")


# ---------------------------------------------------------------------------
# report and export
# ---------------------------------------------------------------------------
def _sample_tracer():
    tracer = Tracer("sample", enabled=True)
    with tracer.span("step") as sp:
        sp.add("bytes", 8_000_000_000)  # 8 GB
        with tracer.span("halo") as h:
            h.add("messages", 12)
    # pin times for deterministic derived numbers
    tracer.root.children["step"].total_seconds = 1.0
    return tracer


def test_report_renders_tree_counts_and_bandwidth():
    tracer = _sample_tracer()
    text = obs.report(tracer, machine=HASWELL)
    assert "sample" in text and HASWELL.name in text
    assert "step" in text and "  halo" in text  # child indented
    assert "8.00GB/s" in text  # 8 GB in 1 s
    pct = 100 * 8e9 / HASWELL.achievable_bandwidth
    assert f"{pct:.1f}%" in text
    assert "messages=12" in text


def test_report_without_spans_explains_how_to_enable():
    text = obs.report(Tracer("empty", enabled=True))
    assert "REPRO_TRACE=1" in text


def test_to_json_round_trips():
    tracer = _sample_tracer()
    payload = json.loads(obs.to_json(tracer))
    assert payload["tracer"] == "sample"
    assert payload["machine"] == obs.observed_machine().name
    (step,) = payload["spans"]
    assert step["name"] == "step"
    assert step["count"] == 1
    assert step["attrs"]["bytes"] == 8_000_000_000
    (halo,) = step["children"]
    assert halo["attrs"] == {"messages": 12}
    assert step["self_seconds"] <= step["total_seconds"]


def test_snapshot_is_a_plain_copy():
    tracer = _sample_tracer()
    snap = obs.snapshot(tracer.root.children["step"])
    tracer.root.children["step"].attrs["bytes"] = 0
    assert snap["attrs"]["bytes"] == 8_000_000_000  # detached


# ---------------------------------------------------------------------------
# tracing must not change numerics
# ---------------------------------------------------------------------------
@stencil
def _lap(a: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = a[-1, 0, 0] + a[1, 0, 0] + a[0, -1, 0] + a[0, 1, 0] - 4.0 * a


def _run_lap():
    a = np.random.default_rng(7).random((10, 10, 4))
    out = np.zeros_like(a)
    _lap(a, out)
    return out


def test_tracing_does_not_change_stencil_numerics():
    tracer = obs.get_tracer()
    saved = (tracer.enabled, tracer.root, tracer._stack)
    try:
        tracer.disable()
        plain = _run_lap()
        tracer.reset()
        tracer.enable()
        traced = _run_lap()
        node = tracer.root.children["stencil._lap"]
        assert node.count == 1
        assert node.attrs["points"] == 8 * 8 * 4
        assert node.attrs["bytes"] > 0
    finally:
        tracer.enabled, tracer.root, tracer._stack = saved
    np.testing.assert_array_equal(plain, traced)
