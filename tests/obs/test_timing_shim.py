"""The deprecated repro.util.timing shim warns and re-exports repro.obs."""

import importlib
import sys

import pytest

import repro.obs.timing as obs_timing


def _fresh_import():
    sys.modules.pop("repro.util.timing", None)
    return importlib.import_module("repro.util.timing")


def test_shim_emits_deprecation_warning():
    with pytest.warns(
        DeprecationWarning, match="repro.util.timing is deprecated"
    ):
        _fresh_import()


def test_shim_reexports_obs_timing():
    with pytest.warns(DeprecationWarning):
        shim = _fresh_import()
    assert shim.median_time is obs_timing.median_time
    assert shim.confidence_interval is obs_timing.confidence_interval
    assert sorted(shim.__all__) == ["confidence_interval", "median_time"]
