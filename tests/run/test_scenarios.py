"""Scenario registry, reference checks and the initial.py shims."""

import warnings

import numpy as np
import pytest

from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.run import run
from repro.scenarios import (
    Scenario,
    SmoothPerturbation,
    UnknownScenarioError,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.scenarios import base as _base

BUILTINS = (
    "baroclinic_wave",
    "solid_body_rotation",
    "rotated_transport",
    "resting_atmosphere",
)


def _one_grid(npx=12):
    partitioner = CubedSpherePartitioner(npx, 1)
    return CubedSphereGrid.build(partitioner, 0, n_halo=3)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_builtins_are_registered():
    names = available_scenarios()
    for name in BUILTINS:
        assert name in names


def test_get_scenario_passthrough_and_unknown():
    scen = get_scenario("baroclinic_wave")
    assert isinstance(scen, Scenario)
    assert get_scenario(scen) is scen
    with pytest.raises(UnknownScenarioError) as err:
        get_scenario("barclinic_wave")
    assert "baroclinic_wave" in str(err.value)  # names the known ones


def test_register_rejects_duplicates_unless_replace():
    scen = get_scenario("baroclinic_wave")
    with pytest.raises(ValueError, match="already registered"):
        register_scenario(scen)
    dummy = Scenario(
        name="test_dummy", description="dummy", builder=scen.builder
    )
    try:
        register_scenario(dummy)
        assert get_scenario("test_dummy") is dummy
        replacement = Scenario(
            name="test_dummy", description="dummy2", builder=scen.builder
        )
        register_scenario(replacement, replace=True)
        assert get_scenario("test_dummy") is replacement
    finally:
        _base._REGISTRY.pop("test_dummy", None)


def test_default_config_applies_overrides():
    scen = get_scenario("baroclinic_wave")
    cfg = scen.default_config()
    assert isinstance(cfg, DynamicalCoreConfig)
    small = scen.default_config(npx=12, npz=4)
    assert (small.npx, small.npz) == (12, 4)


# ---------------------------------------------------------------------------
# reference checks: every built-in scenario must pass its own checks
# after a short integration at a test-sized resolution
# ---------------------------------------------------------------------------
_TEST_CONFIGS = {
    "baroclinic_wave": dict(npx=12, npz=4, dt_atmos=120.0, n_split=2),
    "solid_body_rotation": {},
    "rotated_transport": {},
    "resting_atmosphere": {},
}


@pytest.mark.parametrize("name", BUILTINS)
def test_builtin_scenarios_pass_reference_checks(name):
    scen = get_scenario(name)
    result = run(scen, scen.default_config(**_TEST_CONFIGS[name]), steps=1)
    assert result.ok, result.violations


# ---------------------------------------------------------------------------
# perturbations: the ensemble seeding contract
# ---------------------------------------------------------------------------
def test_control_build_is_unperturbed():
    scen = get_scenario("baroclinic_wave")
    grid = _one_grid()
    cfg = scen.default_config(npx=12, npz=4)
    control = scen.build_state(grid, cfg, rng=None)
    reference = scen.builder(grid, cfg)
    np.testing.assert_array_equal(control.u, reference.u)
    np.testing.assert_array_equal(control.pt, reference.pt)


def test_perturbation_is_deterministic_and_member_specific():
    scen = get_scenario("baroclinic_wave")
    assert isinstance(scen.perturbation, SmoothPerturbation)
    grid = _one_grid()
    cfg = scen.default_config(npx=12, npz=4)
    a = scen.build_state(grid, cfg, np.random.default_rng(11))
    b = scen.build_state(grid, cfg, np.random.default_rng(11))
    c = scen.build_state(grid, cfg, np.random.default_rng(12))
    np.testing.assert_array_equal(a.u, b.u)  # same stream, same state
    assert np.abs(a.u - c.u).max() > 0.0  # different stream differs
    control = scen.build_state(grid, cfg, rng=None)
    # the perturbation is bounded: a small, smooth wind/temperature delta
    assert 0.0 < np.abs(a.u - control.u).max() < 5.0
    assert 0.0 < np.abs(a.pt / control.pt - 1.0).max() < 0.05


# ---------------------------------------------------------------------------
# the DynamicalCore default workload routes through the registry
# ---------------------------------------------------------------------------
def test_dyncore_default_init_is_the_baroclinic_scenario():
    cfg = DynamicalCoreConfig(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
        n_tracers=1,
    )
    default = DynamicalCore(cfg)
    scen = get_scenario("baroclinic_wave")
    explicit = DynamicalCore(cfg, init=scen.initializer())
    for a, b in zip(default.states, explicit.states):
        for f in ("u", "v", "w", "pt", "delp", "delz"):
            np.testing.assert_array_equal(getattr(a, f), getattr(b, f))


# ---------------------------------------------------------------------------
# deprecation shims (the PR-1 set_default_backend pattern)
# ---------------------------------------------------------------------------
def _assert_warns_once(called):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out = called()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got "
        f"{[str(w.message) for w in deprecations]}"
    )
    assert "repro.scenarios" in str(deprecations[0].message)
    return out


def test_initial_shims_warn_once_and_delegate():
    from repro.fv3 import initial
    from repro.scenarios import library

    grid = _one_grid()
    cfg = DynamicalCoreConfig(npx=12, npz=4, layout=1, n_tracers=1)

    old = _assert_warns_once(lambda: initial.baroclinic_state(grid, cfg))
    new = library.baroclinic_state(grid, cfg)
    np.testing.assert_array_equal(old.u, new.u)
    np.testing.assert_array_equal(old.delp, new.delp)

    old_uv = _assert_warns_once(
        lambda: initial.solid_body_rotation_winds(grid, 4, u0=30.0)
    )
    new_uv = library.solid_body_rotation_winds(grid, 4, u0=30.0)
    np.testing.assert_array_equal(old_uv[0], new_uv[0])
    np.testing.assert_array_equal(old_uv[1], new_uv[1])

    old_tr = _assert_warns_once(lambda: initial.gaussian_tracer(grid, 4))
    new_tr = library.gaussian_tracer(grid, 4)
    np.testing.assert_array_equal(old_tr, new_tr)


def test_undeprecated_initial_surface_stays_quiet():
    from repro.fv3.initial import RankFields, reference_coordinate

    cfg = DynamicalCoreConfig(npx=12, npz=4, layout=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        bk, ptop = reference_coordinate(cfg)
    assert bk.shape == (cfg.npz + 1,)
    assert ptop > 0.0
    assert RankFields.__dataclass_fields__  # still the state container
