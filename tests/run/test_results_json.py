"""Property-based round-trip of the facade result types.

The serving layer ships :class:`RunResult`/:class:`MemberResult` as JSON
responses, so every serializable field must survive
``from_json(to_json(x))`` exactly — including floats bit-for-bit
(Python's JSON float encoding is ``repr``-based).  The two object-graph
fields are documented non-serializable: ``MemberResult.states`` comes
back ``[]`` and ``RunResult.engine`` comes back ``None``.
"""

import dataclasses
import json
import math

from hypothesis import given, settings, strategies as st

from repro.fv3.config import DynamicalCoreConfig
from repro.run.results import MemberResult, RunResult

settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")

# finite + signed-infinity floats: JSON round-trips both exactly; NaN is
# excluded only because it breaks the == comparison, not the transport
finite = st.floats(allow_nan=False, allow_infinity=True, width=64)

names = st.text(
    st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                  whitelist_characters="_"),
    min_size=1, max_size=12,
)

summaries = st.dictionaries(names, finite, max_size=6)

member_results = st.builds(
    MemberResult,
    member=st.integers(0, 64),
    steps=st.integers(0, 10_000),
    summary=summaries,
    mass_drift=finite,
    tracer_drift=st.one_of(st.none(), finite),
    check_violations=st.lists(st.text(max_size=40), max_size=4),
    history=st.lists(summaries, max_size=5),
    states=st.just([]),
)

configs = st.builds(
    DynamicalCoreConfig,
    npx=st.sampled_from([12, 24, 48]),
    npz=st.integers(3, 20),
    layout=st.just(1),
    dt_atmos=st.floats(1.0, 1800.0, allow_nan=False),
    k_split=st.integers(1, 4),
    n_split=st.integers(1, 8),
    n_tracers=st.integers(1, 4),
    hydrostatic=st.booleans(),
    d2_damp=st.floats(0.0, 1.0, allow_nan=False),
    smag_coeff=st.floats(0.0, 1.0, allow_nan=False),
    tau=st.floats(0.0, 1e6, allow_nan=False),
)

run_results = st.builds(
    RunResult,
    scenario=names,
    config=configs,
    steps=st.integers(0, 10_000),
    seed=st.integers(0, 2**31),
    members=st.lists(member_results, max_size=3),
    seconds=st.floats(0.0, 1e6, allow_nan=False),
    executor=names,
    amortization=st.dictionaries(names, st.integers(0, 1_000_000),
                                 max_size=5),
    engine=st.just(None),
)


@given(member_results)
def test_member_result_roundtrips(m):
    back = MemberResult.from_json(m.to_json())
    assert back == m


@given(run_results)
def test_run_result_roundtrips(r):
    back = RunResult.from_json(r.to_json())
    assert back == r
    assert back.engine is None
    assert isinstance(back.config, DynamicalCoreConfig)


@given(run_results)
def test_run_result_json_is_plain_data(r):
    """The wire form is a plain JSON object, loadable by any consumer —
    no repr round-trips, no pickles."""
    payload = json.loads(r.to_json())
    assert payload["scenario"] == r.scenario
    assert payload["config"] == dataclasses.asdict(r.config)
    assert len(payload["members"]) == len(r.members)
    for wire, m in zip(payload["members"], r.members):
        assert wire["member"] == m.member
        for key, value in m.summary.items():
            got = wire["summary"][key]
            assert got == value or (math.isinf(value) and got == value)


@given(member_results, st.integers(0, 3))
def test_floats_survive_bit_identically(m, _):
    back = MemberResult.from_json(m.to_json())
    for key, value in m.summary.items():
        assert math.copysign(1.0, back.summary[key]) == \
            math.copysign(1.0, value)
        assert back.summary[key] == value
    assert back.mass_drift == m.mass_drift
