"""The repro.run facade: structured results, executor resolution and
the obs report's ensemble footer."""

import json

import numpy as np
import pytest

from repro import obs
from repro.fv3.config import DynamicalCoreConfig
from repro.run import (
    MemberResult,
    RunResult,
    build_core,
    metrics,
    resolve_executor,
    run,
)
from repro.runtime import ranks
from repro.scenarios import UnknownScenarioError


def _config(**overrides):
    base = dict(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
        n_tracers=1,
    )
    base.update(overrides)
    return DynamicalCoreConfig(**base)


@pytest.fixture(scope="module")
def two_member_run():
    return run("baroclinic_wave", _config(), steps=2, members=2, seed=4)


# ---------------------------------------------------------------------------
# RunResult structure
# ---------------------------------------------------------------------------
def test_run_result_structure(two_member_run):
    result = two_member_run
    assert isinstance(result, RunResult)
    assert result.scenario == "baroclinic_wave"
    assert result.steps == 2
    assert result.seed == 4
    assert result.seconds > 0.0
    assert [m.member for m in result.members] == [0, 1]
    assert result.member(1).member == 1
    with pytest.raises(KeyError):
        result.member(5)
    assert result.ok and result.violations == {}
    am = result.amortization
    assert am["members"] == 2
    assert am["grid_builds_avoided"] == 6  # second member shares geometry
    # the engine is shared; per-member state lives on the members
    assert result.engine is not None
    assert len(result.member(0).states) == result.config.total_ranks


def test_member_result_structure(two_member_run):
    member = two_member_run.member(0)
    assert isinstance(member, MemberResult)
    assert member.steps == 2
    assert len(member.history) == 2  # diagnostics on by default
    entry = member.history[-1]
    for key in ("step", "time", "max_wind", "mass_drift", "tracer_drift"):
        assert key in entry
    assert entry["step"] == 2
    assert member.ok and member.check_violations == []
    assert abs(member.mass_drift) < 1e-9
    assert member.summary["max_wind"] > 0.0


def test_describe_is_human_readable(two_member_run):
    text = two_member_run.describe()
    assert "scenario 'baroclinic_wave'" in text
    assert "member 0" in text and "member 1" in text
    assert "amortized" in text


def test_diagnostics_off_skips_history():
    result = run("baroclinic_wave", _config(), steps=1, diagnostics=False,
                 check=False)
    assert result.member(0).history == []


def test_explicit_member_ids():
    result = run("baroclinic_wave", _config(), steps=1, members=(2,),
                 seed=4, check=False, diagnostics=False)
    assert [m.member for m in result.members] == [2]


def test_unknown_scenario_raises():
    with pytest.raises(UnknownScenarioError):
        run("no_such_scenario", steps=1)


# ---------------------------------------------------------------------------
# executor resolution
# ---------------------------------------------------------------------------
def test_resolve_executor_names():
    ex, owned = resolve_executor(None)
    assert ex is None and not owned
    ex, owned = resolve_executor("sequential")
    try:
        assert owned and not ex.parallel
    finally:
        ex.shutdown()
    ex, owned = resolve_executor("threads", workers=2)
    try:
        assert owned and ex.parallel
    finally:
        ex.shutdown()
    mine = ranks.RankExecutor(1)
    try:
        ex, owned = resolve_executor(mine)
        assert ex is mine and not owned
    finally:
        mine.shutdown()
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("procesess")


def test_build_core_wires_comm_knobs():
    core = build_core(
        "baroclinic_wave", _config(), comm_latency=0.25, max_polls=17,
    )
    assert core.halo.comm.latency == 0.25
    assert core.halo.comm.max_polls == 17


# ---------------------------------------------------------------------------
# obs integration
# ---------------------------------------------------------------------------
@pytest.mark.traced
def test_report_carries_ensemble_footer():
    metrics.reset_metrics()
    try:
        result = run("baroclinic_wave", _config(), steps=1, members=2,
                     check=False)
        text = obs.report()
        footer = [
            line for line in text.splitlines()
            if line.startswith("ensemble:")
        ]
        assert len(footer) == 1
        assert "1 run(s), 2 member(s), 2 member-steps" in footer[0]
        assert "compile cache" in footer[0]
        payload = json.loads(obs.to_json())
        assert payload["ensemble"]["members"] == 2
        assert payload["ensemble"]["member_steps"] == 2
        # the traced run nests per-member spans under the ensemble step
        names = text.splitlines()
        assert any("ensemble.step" in line for line in names)
        assert any("member[1]" in line for line in names)
        assert result.seconds > 0.0
    finally:
        metrics.reset_metrics()


def test_footer_absent_without_runs():
    metrics.reset_metrics()
    summary = metrics.summary()
    assert summary["runs"] == 0
    assert summary["compile_amortization"] is None
    from repro.obs.report import _ensemble_lines

    assert _ensemble_lines() == []


def test_metrics_accumulate_across_runs():
    metrics.reset_metrics()
    try:
        run("baroclinic_wave", _config(), steps=1, check=False,
            diagnostics=False)
        run("baroclinic_wave", _config(), steps=1, members=2, check=False,
            diagnostics=False)
        summary = metrics.summary()
        assert summary["runs"] == 2
        assert summary["members"] == 3
        assert summary["member_steps"] == 3
        assert summary["seconds"] > 0.0
    finally:
        metrics.reset_metrics()


def test_members_spread_is_visible_in_history():
    result = run("baroclinic_wave", _config(), steps=1, members=2, seed=8,
                 check=False)
    winds = [m.history[0]["max_wind"] for m in result.members]
    assert winds[0] != winds[1]  # perturbed member diverges immediately
    assert np.all(np.isfinite(winds))
