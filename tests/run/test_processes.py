"""The process-based rank executor (PR 10): bit-identity with the
sequential and threaded executors on the full 6-tile cube, the
resilience guard, and the merged observability fan-in."""

import numpy as np
import pytest

from repro import obs
from repro.fv3.config import DynamicalCoreConfig
from repro.run import run
from repro.runtime import runtime_summary
from repro.runtime.procs import ProcessRankExecutor

STATE_FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _config(**overrides):
    base = dict(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
        n_tracers=1,
    )
    base.update(overrides)
    return DynamicalCoreConfig(**base)


def _assert_bit_identical(a, b):
    assert [m.member for m in a.members] == [m.member for m in b.members]
    for ma, mb in zip(a.members, b.members):
        assert ma.summary == mb.summary
        assert ma.mass_drift == mb.mass_drift
        assert ma.tracer_drift == mb.tracer_drift
        assert ma.history == mb.history
        for sa, sb in zip(ma.states, mb.states):
            for name in STATE_FIELDS:
                np.testing.assert_array_equal(
                    getattr(sa, name), getattr(sb, name), err_msg=name
                )
            for ta, tb in zip(sa.tracers, sb.tracers):
                np.testing.assert_array_equal(ta, tb)


@pytest.fixture(scope="module")
def sequential_run():
    return run("baroclinic_wave", _config(), steps=2, members=2, seed=4,
               executor="sequential")


def test_threads_match_sequential(sequential_run):
    threaded = run("baroclinic_wave", _config(), steps=2, members=2,
                   seed=4, executor="threads")
    _assert_bit_identical(sequential_run, threaded)


@pytest.mark.parametrize("workers", [1, 2, 6])
def test_processes_bit_identical_to_sequential(sequential_run, workers):
    """1, 2 and 6 worker processes over the 6-rank cube all reproduce
    the sequential ensemble bit for bit — states, summaries, drifts and
    per-step history entries."""
    proc = run("baroclinic_wave", _config(), steps=2, members=2, seed=4,
               executor="processes", workers=workers)
    _assert_bit_identical(sequential_run, proc)
    assert f"workers={workers}" in proc.executor
    assert "ranks=6" in proc.executor


def test_spawn_start_method_matches(sequential_run):
    """The spawn start method (no inherited interpreter state) rebuilds
    the same replicas and produces the same bits."""
    pex = ProcessRankExecutor(workers=2, start_method="spawn")
    proc = run("baroclinic_wave", _config(), steps=2, members=2, seed=4,
               executor=pex)
    _assert_bit_identical(sequential_run, proc)
    assert "start=spawn" in proc.executor


def test_resilience_rejected_under_processes():
    from repro.resilience import ResilienceConfig

    with pytest.raises(ValueError, match="resilience"):
        run("baroclinic_wave", _config(), steps=1,
            executor="processes", resilience=ResilienceConfig())


def test_engine_level_processes_name_rejected():
    from repro.run import EnsembleDriver

    with pytest.raises(ValueError, match="processes"):
        EnsembleDriver("baroclinic_wave", _config(),
                       executor="processes")


def test_worker_observability_merged_into_parent():
    """Runtime summary and the obs report footer account for the worker
    processes after a run."""
    before = runtime_summary().get("procs", {}).get(
        "worker_reports_merged", 0
    )
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True
    tracer.reset()
    try:
        run("baroclinic_wave", _config(), steps=1, members=1, seed=1,
            executor="processes", workers=2)
        rt = runtime_summary()
        assert "procs" in rt
        assert rt["procs"]["worker_reports_merged"] >= before + 2
        assert rt["procs"]["messages"] > 0
        assert rt["procs"]["bytes"] > 0
        report = obs.report()
    finally:
        tracer.enabled = was_enabled
        tracer.reset()
    assert "process executor:" in report


def test_worker_spans_folded_when_tracing():
    """With tracing enabled, worker span trees (rank bodies run in the
    worker processes) surface in the parent tracer."""
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True
    tracer.reset()
    try:
        run("baroclinic_wave", _config(), steps=1, members=1, seed=1,
            executor="processes", workers=2)
        names = set()

        def walk(span):
            names.add(span.name)
            for child in span.children.values():
                walk(child)

        walk(tracer.root)
        assert "ensemble.launch_workers" in names
        # spans recorded inside the workers (dyncore stepping) arrived
        assert any(name.startswith("step[") or name == "ensemble.step"
                   or name.startswith("acoustic") or "halo" in name
                   for name in names), sorted(names)
    finally:
        tracer.enabled = was_enabled
        tracer.reset()


def test_comm_latency_rides_through():
    """Simulated latency reaches the shared-memory transport (the run
    still completes and stays bit-identical)."""
    seq = run("baroclinic_wave", _config(n_split=1), steps=1, members=1,
              seed=2, executor="sequential")
    proc = run("baroclinic_wave", _config(n_split=1), steps=1, members=1,
               seed=2, executor="processes", workers=2,
               comm_latency=0.001)
    _assert_bit_identical(seq, proc)
