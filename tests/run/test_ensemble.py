"""Ensemble determinism: batching must never change the answer.

The driver steps every member through one shared engine core; these
tests pin down the contract that makes that safe — a member's
trajectory is a pure function of (scenario, config, root seed, member
id), regardless of batch composition, executor, interruption or
engine reuse.
"""

import numpy as np
import pytest

from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.resilience import ResilienceConfig
from repro.run import EnsembleDriver, member_rng, run
from repro.scenarios import get_scenario

FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _config(**overrides):
    base = dict(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
        n_tracers=1,
    )
    base.update(overrides)
    return DynamicalCoreConfig(**base)


def _assert_members_equal(a, b, context=""):
    """Compare two members' per-rank states (anything with .states, or
    plain state lists)."""
    a = getattr(a, "states", a)
    b = getattr(b, "states", b)
    for rank, (sa, sb) in enumerate(zip(a, b)):
        for f in FIELDS:
            np.testing.assert_array_equal(
                getattr(sa, f), getattr(sb, f),
                err_msg=f"{context}: rank {rank} field {f}",
            )
        for t, (ta, tb) in enumerate(zip(sa.tracers, sb.tracers)):
            np.testing.assert_array_equal(
                ta, tb, err_msg=f"{context}: rank {rank} tracer {t}"
            )


# ---------------------------------------------------------------------------
# seeding contract
# ---------------------------------------------------------------------------
def test_member_rng_contract():
    assert member_rng(42, 0) is None  # member 0 is the control
    a = member_rng(42, 3).standard_normal(8)
    b = member_rng(42, 3).standard_normal(8)
    c = member_rng(42, 4).standard_normal(8)
    d = member_rng(43, 3).standard_normal(8)
    np.testing.assert_array_equal(a, b)
    assert np.abs(a - c).max() > 0.0
    assert np.abs(a - d).max() > 0.0


def test_members_actually_spread():
    result = run("baroclinic_wave", _config(), steps=1, members=3, seed=5,
                 check=False)
    control = result.member(0)
    for k in (1, 2):
        member = result.member(k)
        deltas = [
            float(np.abs(sa.u - sb.u).max())
            for sa, sb in zip(control.states, member.states)
        ]
        assert max(deltas) > 0.0, f"member {k} is identical to the control"


# ---------------------------------------------------------------------------
# bit-identical invariances
# ---------------------------------------------------------------------------
def test_rerun_is_bit_identical():
    first = run("baroclinic_wave", _config(), steps=2, members=3, seed=9,
                check=False, diagnostics=False)
    second = run("baroclinic_wave", _config(), steps=2, members=3, seed=9,
                 check=False, diagnostics=False)
    for k in range(3):
        _assert_members_equal(
            first.member(k), second.member(k), f"re-run member {k}"
        )


def test_member_alone_matches_member_in_batch():
    batch = run("baroclinic_wave", _config(), steps=2, members=3, seed=9,
                check=False, diagnostics=False)
    for k in (0, 2):
        alone = run("baroclinic_wave", _config(), steps=2, members=(k,),
                    seed=9, check=False, diagnostics=False)
        assert [m.member for m in alone.members] == [k]
        _assert_members_equal(
            batch.member(k), alone.member(k), f"member {k} alone vs batch"
        )


def test_control_member_matches_direct_core_stepping():
    """The facade with members=1 reproduces a hand-built
    DynamicalCore run exactly — the engine swap adds nothing."""
    cfg = _config()
    result = run("baroclinic_wave", cfg, steps=2, check=False,
                 diagnostics=False)
    core = DynamicalCore(
        cfg, init=get_scenario("baroclinic_wave").initializer()
    )
    core.step_dynamics()
    core.step_dynamics()
    member = result.member(0)
    for rank, state in enumerate(core.states):
        for f in FIELDS:
            np.testing.assert_array_equal(
                getattr(member.states[rank], f), getattr(state, f),
                err_msg=f"facade vs direct core: rank {rank} field {f}",
            )


def test_threaded_executor_is_bit_identical():
    sequential = run("baroclinic_wave", _config(), steps=1, members=2,
                     seed=3, executor="sequential", check=False,
                     diagnostics=False)
    threaded = run("baroclinic_wave", _config(), steps=1, members=2,
                   seed=3, executor="threads", check=False,
                   diagnostics=False)
    for k in range(2):
        _assert_members_equal(
            sequential.member(k), threaded.member(k),
            f"threads vs sequential member {k}",
        )


# ---------------------------------------------------------------------------
# per-member checkpoint/restart
# ---------------------------------------------------------------------------
def test_checkpoint_restore_matches_uninterrupted(tmp_path):
    with EnsembleDriver("baroclinic_wave", _config(), members=2,
                        seed=7, diagnostics=False) as uninterrupted:
        uninterrupted.step(3)
        expected = uninterrupted.members[1]

        with EnsembleDriver("baroclinic_wave", _config(), members=2,
                            seed=7, diagnostics=False) as interrupted:
            interrupted.step(1)
            path = interrupted.checkpoint_member(
                1, tmp_path / "member1.npz"
            )

            # a fresh driver (fresh process, conceptually) resumes
            # member 1 mid-run and must land on the same trajectory
            with EnsembleDriver("baroclinic_wave", _config(), members=2,
                                seed=7, diagnostics=False) as resumed:
                meta = resumed.restore_member(1, path)
                assert int(meta["step"]) == 1
                assert int(meta["member"]) == 1
                resumed.step(2)
                restored = resumed.members[1]
                assert restored.step_count == 3
                _assert_members_equal(
                    expected.states, restored.states,
                    "checkpoint/restore member 1",
                )


def test_periodic_checkpoints_land_in_member_subdirs(tmp_path):
    res = ResilienceConfig(
        checkpoint_every=1, checkpoint_dir=str(tmp_path / "ckpt")
    )
    result = run("baroclinic_wave", _config(), steps=2, members=2,
                 resilience=res, check=False, diagnostics=False)
    assert result.steps == 2
    for member in (0, 1):
        member_dir = tmp_path / "ckpt" / f"member{member:03d}"
        written = sorted(p.name for p in member_dir.glob("*.npz"))
        assert written == ["ckpt_step000001.npz", "ckpt_step000002.npz"]


# ---------------------------------------------------------------------------
# driver surface
# ---------------------------------------------------------------------------
def test_member_ids_validation():
    with pytest.raises(ValueError, match=">= 1"):
        EnsembleDriver("baroclinic_wave", _config(), members=0)
    with pytest.raises(ValueError, match="duplicate"):
        EnsembleDriver("baroclinic_wave", _config(), members=(1, 1))
    with pytest.raises(ValueError, match="not be empty"):
        EnsembleDriver("baroclinic_wave", _config(), members=())


def test_reference_check_and_drifts_per_member():
    with EnsembleDriver("baroclinic_wave", _config(), members=2,
                        seed=1) as driver:
        driver.step(1)
        checks = driver.reference_check()
        assert set(checks) == {0, 1}
        assert checks[0] == [] and checks[1] == []
        for m in (0, 1):
            assert abs(driver.mass_drift(m)) < 1e-9
            assert abs(driver.tracer_drift(m)) < 1e-5
