"""Dynamic ensemble membership — the serving layer's request slots.

One warm :class:`EnsembleDriver` engine hosts members that come and go:
``add_member``/``remove_member`` at any time, selective stepping,
bit-exact snapshot/restore of individual members, and an ``rng``
override that keeps a member's state a pure function of the *request's*
identity rather than the slot id it happens to occupy."""

import numpy as np
import pytest

from repro.fv3.config import DynamicalCoreConfig
from repro.run import EnsembleDriver, member_rng

CFG = DynamicalCoreConfig(
    npx=12, npz=4, layout=1, dt_atmos=300.0, k_split=1, n_split=2,
    n_tracers=1,
)


@pytest.fixture
def driver():
    d = EnsembleDriver("baroclinic_wave", CFG, members=(0,), seed=3,
                       diagnostics=False)
    yield d
    d.close()


def test_members_come_and_go(driver):
    driver.add_member(7)
    driver.add_member(2)
    assert driver.member_ids == (0, 7, 2)  # insertion order
    driver.remove_member(7)
    assert driver.member_ids == (0, 2)
    with pytest.raises(KeyError):
        driver.remove_member(7)
    with pytest.raises(ValueError):
        driver.add_member(2)  # already loaded


def test_step_selected_advances_only_the_selected(driver):
    driver.add_member(1)
    driver.step_selected([1], 2)
    assert driver.members[1].step_count == 2
    assert driver.members[0].step_count == 0  # untouched
    report = driver.member_report(1)
    assert report["step"] == 2
    assert np.isfinite(report["summary"]["max_wind"])


def test_snapshot_restore_resumes_bit_identically(driver):
    """snapshot at step 2, evict, re-install, run to 3 == straight run
    to 3 — byte for byte."""
    driver.step_selected([0], 3)
    want = driver.member_report(0)

    other = EnsembleDriver("baroclinic_wave", CFG, members=(0,), seed=3,
                           diagnostics=False)
    try:
        other.step_selected([0], 2)
        snap = other.snapshot_member(0)
        mass0 = other.members[0].mass0
        tracer0 = other.members[0].tracer0
        other.remove_member(0)
        other.add_member(0, snapshot=snap, mass0=mass0, tracer0=tracer0)
        assert other.members[0].step_count == 2  # adopted, not rebuilt
        other.step_selected([0], 1)
        got = other.member_report(0)
    finally:
        other.close()
    assert got["summary"] == want["summary"]
    assert got["mass_drift"] == want["mass_drift"]


def test_snapshot_is_independent_of_later_stepping(driver):
    snap = driver.snapshot_member(0)
    before = [a.copy() for a in snap.arrays[0].values()]
    driver.step_selected([0], 1)
    for a, b in zip(before, snap.arrays[0].values()):
        np.testing.assert_array_equal(a, b)


def test_rng_override_decouples_state_from_slot_id(driver):
    """Two different slot ids seeded with the same request rng hold
    identical states; the default path would tie them to the slot."""
    driver.add_member(11, rng=member_rng(3, 1))
    driver.add_member(42, rng=member_rng(3, 1))
    driver.step_selected([11, 42], 2)
    a = driver.member_report(11)
    b = driver.member_report(42)
    assert a["summary"] == b["summary"]
    assert a["mass_drift"] == b["mass_drift"]
    # and they genuinely match the classic member-1 build under slot 1
    driver.add_member(1)
    driver.step_selected([1], 2)
    c = driver.member_report(1)
    assert c["summary"] == a["summary"]


def test_rng_none_installs_unperturbed_control(driver):
    driver.add_member(5, rng=None)
    driver.step_selected([0, 5], 1)
    control = driver.member_report(0)  # member 0 is the control
    clone = driver.member_report(5)
    assert clone["summary"] == control["summary"]


def test_engine_adoption_hosts_fresh_members(driver):
    """A second driver adopting the warm engine starts empty, serves
    its own members, and matches a cold driver bit for bit."""
    serving = EnsembleDriver("baroclinic_wave", CFG, members=(), seed=3,
                             engine=driver.engine, diagnostics=False)
    serving.add_member(0, rng=member_rng(3, 1))
    serving.step_selected([0], 2)
    got = serving.member_report(0)

    cold = EnsembleDriver("baroclinic_wave", CFG, members=(1,), seed=3,
                          diagnostics=False)
    try:
        cold.step_selected([1], 2)
        want = cold.member_report(1)
    finally:
        cold.close()
    assert got["summary"] == want["summary"]
    assert got["mass_drift"] == want["mass_drift"]


def test_engine_adoption_rejects_config_mismatch(driver):
    import dataclasses

    other = dataclasses.replace(CFG, dt_atmos=600.0)
    with pytest.raises(ValueError, match="different config"):
        EnsembleDriver("baroclinic_wave", other, members=(),
                       engine=driver.engine, diagnostics=False)
