"""Unit tests for the compiled (JITted loop nest) emission target.

Cross-checks the scalar lowering against both DSL backends, exercises
the eligibility rules and their per-kernel fallback, the k-blocking
legality analysis, statement fusion, and the plan's argument contract.
Runs under the ``pyloops`` engine so it needs no toolchain; a separate
test repeats the equivalence check under ``cgen`` when a C compiler
exists.
"""

import numpy as np
import pytest

from repro.dsl import (
    BACKWARD,
    FORWARD,
    PARALLEL,
    Field,
    computation,
    interval,
    stencil,
)
from repro.dsl.backend_dataflow import DataflowStencilExecutor
from repro.runtime import jit
from repro.sdfg.codegen import compile_sdfg
from repro.sdfg.codegen_compiled import (
    CompiledPlan,
    IneligibleKernel,
    PlanBindError,
    compile_sdfg_compiled,
    lower_kernel,
)
from repro.sdfg.nodes import Kernel


@pytest.fixture(autouse=True)
def _pyloops_engine(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "pyloops")
    jit.reset(engine=True)
    yield
    monkeypatch.delenv("REPRO_JIT", raising=False)
    jit.reset(engine=True)


def _build_sdfg(stencil_obj, arrays, origin=(0, 0, 0), domain=None):
    domain = domain or next(iter(arrays.values())).shape
    ex = DataflowStencilExecutor(stencil_obj)
    return ex.build_sdfg(
        {n: a.shape for n, a in arrays.items()},
        {n: a.dtype.type for n, a in arrays.items()},
        origin,
        domain,
        None,
    )


def _run_both(stencil_obj, arrays, scalars=None, origin=(0, 0, 0),
              domain=None):
    scalars = scalars or {}
    domain = domain or next(iter(arrays.values())).shape
    sdfg = _build_sdfg(stencil_obj, arrays, origin, domain)
    ref = {n: a.copy() for n, a in arrays.items()}
    got = {n: a.copy() for n, a in arrays.items()}
    compile_sdfg(sdfg)(arrays=ref, scalars=scalars)
    plan = compile_sdfg_compiled(sdfg)
    plan(arrays=got, scalars=scalars)
    return ref, got, plan


def _rand(shape, seed=0):
    return np.random.default_rng(seed).random(shape)


def _first_kernel(sdfg) -> Kernel:
    for state in sdfg.states:
        for node in state.nodes:
            if isinstance(node, Kernel):
                return node
    raise AssertionError("no kernel")


# ---------------------------------------------------------------------------
# equivalence
# ---------------------------------------------------------------------------


@stencil
def _lap(a: Field, out: Field, w: float):
    with computation(PARALLEL), interval(...):
        out = w * (a[-1, 0, 0] + a[1, 0, 0] + a[0, -1, 0] + a[0, 1, 0]
                   - 4.0 * a)


def test_parallel_kernel_matches_numpy_emission():
    arrays = {"a": _rand((8, 8, 6)), "out": np.zeros((8, 8, 6))}
    ref, got, plan = _run_both(
        _lap, arrays, scalars={"w": 0.25}, origin=(1, 1, 0),
        domain=(6, 6, 6),
    )
    assert plan.compiled_kernels and not plan.fallback_kernels
    np.testing.assert_array_equal(got["out"], ref["out"])


@stencil
def _cumsum(a: Field, out: Field):
    with computation(FORWARD):
        with interval(0, 1):
            out = a
        with interval(1, None):
            out = out[0, 0, -1] + a


def test_forward_recurrence_matches_numpy_emission():
    arrays = {"a": _rand((5, 4, 7)), "out": np.zeros((5, 4, 7))}
    ref, got, plan = _run_both(_cumsum, arrays)
    assert plan.compiled_kernels
    np.testing.assert_array_equal(got["out"], ref["out"])


@stencil
def _bsweep(a: Field, out: Field):
    with computation(BACKWARD):
        with interval(-1, None):
            out = a
        with interval(0, -1):
            out = out[0, 0, 1] * 0.5 + a


def test_backward_recurrence_matches_numpy_emission():
    arrays = {"a": _rand((5, 4, 7)), "out": np.zeros((5, 4, 7))}
    ref, got, _ = _run_both(_bsweep, arrays)
    np.testing.assert_array_equal(got["out"], ref["out"])


@pytest.mark.skipif(jit._find_cc() is None, reason="no C compiler")
def test_cgen_engine_matches_numpy_emission(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_JIT", "cgen")
    monkeypatch.setenv("REPRO_JIT_DIR", str(tmp_path))
    jit.reset(engine=True)
    arrays = {"a": _rand((8, 8, 6)), "out": np.zeros((8, 8, 6))}
    ref, got, plan = _run_both(
        _lap, arrays, scalars={"w": 0.25}, origin=(1, 1, 0),
        domain=(6, 6, 6),
    )
    assert plan.engine == "cgen"
    np.testing.assert_array_equal(got["out"], ref["out"])


# ---------------------------------------------------------------------------
# eligibility + fallback
# ---------------------------------------------------------------------------


@stencil
def _logged(a: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = log(a)  # noqa: F821 - DSL builtin


def test_transcendental_kernel_falls_back_within_the_plan():
    arrays = {"a": 1.0 + _rand((4, 4, 3)), "out": np.zeros((4, 4, 3))}
    ref, got, plan = _run_both(_logged, arrays)
    assert plan.compiled_kernels == []
    assert plan.fallback_kernels
    assert "bit-exact scalar form" in plan.fallback_kernels[0][1]
    np.testing.assert_array_equal(got["out"], ref["out"])


def test_parallel_self_read_at_offset_is_ineligible():
    @stencil
    def shift(a: Field):
        with computation(PARALLEL), interval(...):
            a = a[1, 0, 0]

    arrays = {"a": _rand((5, 4, 3))}
    sdfg = _build_sdfg(shift, arrays, domain=(4, 4, 3))
    kernel = _first_kernel(sdfg)
    with pytest.raises(IneligibleKernel, match="reads itself"):
        lower_kernel(kernel, sdfg, "k0", threads=1)


# ---------------------------------------------------------------------------
# k-blocking legality + fusion
# ---------------------------------------------------------------------------


def test_upward_cross_statement_read_forces_full_k():
    @stencil
    def updown(a: Field, t: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = a * 2.0
            out = t[0, 0, 1]

    arrays = {
        "a": _rand((4, 4, 6)), "t": np.zeros((4, 4, 6)),
        "out": np.zeros((4, 4, 6)),
    }
    sdfg = _build_sdfg(updown, arrays, domain=(4, 4, 5))
    unit = lower_kernel(_first_kernel(sdfg), sdfg, "k0", threads=1)
    assert unit.full_k

    ref = {n: a.copy() for n, a in arrays.items()}
    got = {n: a.copy() for n, a in arrays.items()}
    compile_sdfg(sdfg)(arrays=ref, scalars={})
    compile_sdfg_compiled(sdfg)(arrays=got, scalars={})
    np.testing.assert_array_equal(got["out"], ref["out"])


def test_pointwise_chain_is_fused_into_one_loop_nest():
    @stencil
    def chain(a: Field, t: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = a * 2.0
            out = t + 1.0

    arrays = {
        "a": _rand((4, 4, 3)), "t": np.zeros((4, 4, 3)),
        "out": np.zeros((4, 4, 3)),
    }
    sdfg = _build_sdfg(chain, arrays)
    unit = lower_kernel(_first_kernel(sdfg), sdfg, "k0", threads=1)
    # both statements share one loop nest: a single i-loop in the source
    assert unit.py_source.count("for i in __prange") == 1


def test_offset_read_of_written_name_splits_the_cluster():
    @stencil
    def stag(a: Field, t: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = a * 2.0
            out = t[1, 0, 0] + t[-1, 0, 0]

    arrays = {
        "a": _rand((6, 4, 3)), "t": np.zeros((6, 4, 3)),
        "out": np.zeros((6, 4, 3)),
    }
    sdfg = _build_sdfg(stag, arrays, origin=(1, 0, 0), domain=(4, 4, 3))
    unit = lower_kernel(_first_kernel(sdfg), sdfg, "k0", threads=1)
    assert unit.py_source.count("for i in __prange") == 2

    ref = {n: a.copy() for n, a in arrays.items()}
    got = {n: a.copy() for n, a in arrays.items()}
    compile_sdfg(sdfg)(arrays=ref, scalars={})
    compile_sdfg_compiled(sdfg)(arrays=got, scalars={})
    np.testing.assert_array_equal(got["out"], ref["out"])


# ---------------------------------------------------------------------------
# plan contract
# ---------------------------------------------------------------------------


def test_mismatched_array_raises_plan_bind_error():
    arrays = {"a": _rand((4, 4, 3)), "out": np.zeros((4, 4, 3))}
    sdfg = _build_sdfg(_lap, arrays, origin=(1, 1, 0), domain=(2, 2, 3))
    plan = compile_sdfg_compiled(sdfg)
    bad = {"a": np.zeros((4, 4, 4)), "out": np.zeros((4, 4, 3))}
    with pytest.raises(PlanBindError, match="does not match"):
        plan(arrays=bad, scalars={"w": 1.0})


def test_instrumented_plan_records_kernel_times():
    arrays = {"a": _rand((4, 4, 3)), "out": np.zeros((4, 4, 3))}
    sdfg = _build_sdfg(_lap, arrays, origin=(1, 1, 0), domain=(2, 2, 3))
    plan = compile_sdfg_compiled(sdfg, instrument=True)
    plan(arrays=arrays, scalars={"w": 1.0})
    assert plan.kernel_times
    (total, count), = plan.kernel_times.values()
    assert count == 1 and total >= 0.0


def test_unavailable_engine_raises(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "none")
    jit.reset(engine=True)
    arrays = {"a": _rand((4, 4, 3)), "out": np.zeros((4, 4, 3))}
    sdfg = _build_sdfg(_lap, arrays, origin=(1, 1, 0), domain=(2, 2, 3))
    with pytest.raises(jit.JitUnavailableError):
        compile_sdfg_compiled(sdfg)
