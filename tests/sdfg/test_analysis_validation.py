"""Analysis, validation, cutout and graph-view unit tests."""

import numpy as np
import pytest

from repro.dsl import BACKWARD, FORWARD, Field, PARALLEL, computation, interval, stencil
from repro.sdfg import SDFG
from repro.sdfg.analysis import (
    kernel_costs,
    load_store_fraction,
    memory_footprint,
    total_bytes,
    total_flops,
)
from repro.sdfg.cutout import state_cutouts, time_cutout
from repro.sdfg.nodes import (
    AccessNode,
    Callback,
    StencilComputation,
    Tasklet,
    feasible_schedules,
)
from repro.sdfg.validation import SDFGValidationError, validate_sdfg


@stencil
def _axpy(x: Field, y: Field, a: float):
    with computation(PARALLEL), interval(...):
        y = a * x + y


@stencil
def _solver(q: Field, out: Field):
    with computation(FORWARD):
        with interval(0, 1):
            out = q
        with interval(1, None):
            out = 0.5 * (out[0, 0, -1] + q)


def _simple_sdfg(shape=(8, 8, 4)):
    sdfg = SDFG("t")
    sdfg.add_array("x", shape)
    sdfg.add_array("y", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(
        _axpy.definition, _axpy.extents,
        mapping={"x": "x", "y": "y"}, domain=shape, origin=(0, 0, 0),
        scalar_mapping={"a": "a"},
    ))
    sdfg.expand_library_nodes()
    return sdfg


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------

def test_kernel_costs_and_totals():
    sdfg = _simple_sdfg()
    (cost,) = kernel_costs(sdfg)
    n = 8 * 8 * 4
    # reads x and y, writes y: 3n elements
    assert cost.bytes_moved == 3 * n * 8
    assert cost.flops == 2 * n  # one mul + one add per point
    assert total_bytes(sdfg) == cost.bytes_moved
    assert total_flops(sdfg) == cost.flops
    assert 0 < cost.arithmetic_intensity < 1


def test_load_store_fraction_bounds():
    sdfg = _simple_sdfg()
    frac = load_store_fraction(sdfg)
    assert 0.0 < frac < 1.0


def test_memory_footprint_categories():
    sdfg = _simple_sdfg()
    sdfg.add_transient("tmp", (8, 8, 4))
    fp = memory_footprint(sdfg)
    assert fp["persistent"] == 2 * 8 * 8 * 4 * 8
    assert fp["transient"] == 8 * 8 * 4 * 8


def test_dataflow_graph_view():
    sdfg = _simple_sdfg()
    g = sdfg.states[0].dataflow_graph(sdfg)
    access_nodes = [n for n in g.nodes if isinstance(n, AccessNode)]
    # x read + y read + y write
    assert len(access_nodes) == 3
    memlets = [d["memlet"] for _, _, d in g.edges(data=True)]
    assert any(m.is_write for m in memlets)
    assert all(m.volume(sdfg) > 0 for m in memlets)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def test_validation_accepts_good_graph():
    validate_sdfg(_simple_sdfg())


def test_validation_rejects_out_of_bounds_kernel():
    sdfg = SDFG("bad")
    sdfg.add_array("x", (4, 4, 2))
    sdfg.add_array("y", (4, 4, 2))
    state = sdfg.add_state("s0")
    state.add(StencilComputation(
        _axpy.definition, _axpy.extents,
        mapping={"x": "x", "y": "y"},
        domain=(8, 8, 2),  # larger than the containers
        origin=(0, 0, 0),
        scalar_mapping={"a": "a"},
    ))
    sdfg.expand_library_nodes()
    with pytest.raises(SDFGValidationError, match="exceeds container"):
        validate_sdfg(sdfg)


def test_validation_rejects_rank_mismatch():
    sdfg = _simple_sdfg()
    # container loses a dimension but the kernel still accesses it as IJK
    sdfg.arrays["y"].shape = (8, 8)
    with pytest.raises(SDFGValidationError, match="rank mismatch on 'y'"):
        validate_sdfg(sdfg)


def test_validation_rejects_unknown_container():
    sdfg = _simple_sdfg()
    del sdfg.arrays["y"]
    with pytest.raises(
        SDFGValidationError, match="access of unknown container 'y'"
    ):
        validate_sdfg(sdfg)


def test_validation_rejects_bad_loop_regions():
    sdfg = _simple_sdfg()
    sdfg.add_loop(0, 3, 2)  # last state index out of range
    with pytest.raises(
        SDFGValidationError, match=r"loop region \[0, 3\] out of state range"
    ):
        validate_sdfg(sdfg)


def test_validation_rejects_overlapping_loops():
    sdfg = _simple_sdfg()
    sdfg.add_state("s1")
    sdfg.add_state("s2")
    sdfg.add_loop(0, 1, 2)
    sdfg.add_loop(1, 2, 2)  # overlaps without nesting
    with pytest.raises(
        SDFGValidationError,
        match=r"\[0,1\] and \[1,2\] overlap without nesting",
    ):
        validate_sdfg(sdfg)


def test_validation_rejects_infeasible_schedule():
    sdfg = SDFG("v")
    shape = (4, 4, 6)
    sdfg.add_array("q", shape)
    sdfg.add_array("out", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(
        _solver.definition, _solver.extents,
        mapping={"q": "q", "out": "out"}, domain=shape, origin=(0, 0, 0),
    ))
    sdfg.expand_library_nodes()
    (kern,) = sdfg.all_kernels()
    kern.schedule.loop_dims = ()  # K no longer sequential: invalid
    kern.schedule.iteration_order = ("Interval", "Operation", "K", "J", "I")
    with pytest.raises(SDFGValidationError, match="invalid"):
        validate_sdfg(sdfg)


def test_feasible_schedules_respect_order():
    for sched in feasible_schedules("FORWARD"):
        assert sched.is_valid_for("FORWARD")
    assert len(feasible_schedules("PARALLEL")) >= 6


# ---------------------------------------------------------------------------
# Cutouts
# ---------------------------------------------------------------------------

def test_cutout_skips_single_kernel_states():
    sdfg = _simple_sdfg()
    assert state_cutouts(sdfg) == []


def test_cutout_inputs_exclude_produced_transients():
    sdfg = SDFG("c")
    shape = (8, 8, 2)
    sdfg.add_array("x", shape)
    sdfg.add_array("out", shape)
    sdfg.add_transient("mid", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(
        _axpy.definition, _axpy.extents,
        mapping={"x": "x", "y": "mid"}, domain=shape, origin=(0, 0, 0),
        scalar_mapping={"a": "a"},
    ))
    state.add(StencilComputation(
        _axpy.definition, _axpy.extents,
        mapping={"x": "mid", "y": "out"}, domain=shape, origin=(0, 0, 0),
        scalar_mapping={"a": "a"},
    ))
    sdfg.expand_library_nodes()
    (cutout,) = state_cutouts(sdfg)
    assert "x" in cutout.inputs
    assert "mid" in cutout.inputs  # read before written within the cutout? no:
    # mid is read by kernel 2 but written by kernel 1 first → stays transient
    # unless also an input; it was written first, so it must NOT be an input
    assert cutout.sdfg.arrays["mid"].transient or "mid" in cutout.inputs
    t = time_cutout(cutout, repetitions=2)
    assert t > 0


def test_callback_nodes_serialize_via_pystate():
    sdfg = _simple_sdfg()
    state = sdfg.states[0]
    cb = Callback("io", lambda: None)
    state.add(cb)
    reads, writes = state.node_reads_writes(cb)
    assert "__pystate" in reads and "__pystate" in writes
    validate_sdfg(sdfg)


def test_tasklet_reads_writes():
    t = Tasklet("t", "a + b", ("a", "b"), "c")
    sdfg = _simple_sdfg()
    state = sdfg.states[0]
    reads, writes = state.node_reads_writes(t)
    assert reads == ["a", "b"] and writes == ["c"]
