"""Codegen equivalence tests: dataflow backend must match NumPy backend."""

import numpy as np
import pytest

from repro.dsl import (
    BACKWARD,
    FORWARD,
    PARALLEL,
    Field,
    FieldIJ,
    computation,
    horizontal,
    interval,
    j_start,
    region,
    stencil,
)


def _run_both(stencil_obj, arrays, scalars=None, **call_kwargs):
    """Run a stencil on both backends, return (numpy_result, dataflow_result)."""
    scalars = scalars or {}
    a_np = {k: v.copy() for k, v in arrays.items()}
    a_df = {k: v.copy() for k, v in arrays.items()}
    stencil_obj(**a_np, **scalars, backend="numpy", **call_kwargs)
    stencil_obj(**a_df, **scalars, backend="dataflow", **call_kwargs)
    return a_np, a_df


def _assert_equal(a_np, a_df):
    for name in a_np:
        np.testing.assert_array_equal(
            a_np[name], a_df[name], err_msg=f"mismatch in {name!r}"
        )


def _rand(shape, seed=0):
    return np.random.default_rng(seed).random(shape)


def test_copy_equivalence():
    @stencil
    def copy(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    arrays = {"a": _rand((5, 4, 3)), "b": np.zeros((5, 4, 3))}
    _assert_equal(*_run_both(copy, arrays, origin=(0, 0, 0), domain=(5, 4, 3)))


def test_laplacian_equivalence():
    @stencil
    def lap(a: Field, out: Field, w: float):
        with computation(PARALLEL), interval(...):
            out = w * (a[-1, 0, 0] + a[1, 0, 0] + a[0, -1, 0] + a[0, 1, 0] - 4.0 * a)

    arrays = {"a": _rand((8, 8, 4)), "out": np.zeros((8, 8, 4))}
    _assert_equal(*_run_both(lap, arrays, scalars={"w": 0.25}))


def test_temporary_equivalence():
    @stencil
    def smooth(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = (a[-1, 0, 0] + a[1, 0, 0]) * 0.5
            out = (t[-1, 0, 0] + t[1, 0, 0]) * 0.5

    arrays = {"a": _rand((10, 6, 3)), "out": np.zeros((10, 6, 3))}
    _assert_equal(
        *_run_both(smooth, arrays, origin=(2, 2, 0), domain=(6, 2, 3))
    )


def test_vertical_solver_equivalence():
    @stencil
    def tridiag(a: Field, b: Field, c: Field, d: Field, x: Field):
        with computation(FORWARD):
            with interval(0, 1):
                w = c / b
                g = d / b
            with interval(1, None):
                w = c / (b - a * w[0, 0, -1])
                g = (d - a * g[0, 0, -1]) / (b - a * w[0, 0, -1])
        with computation(BACKWARD):
            with interval(-1, None):
                x = g
            with interval(0, -1):
                x = g - w * x[0, 0, 1]

    rng = np.random.default_rng(1)
    shape = (3, 3, 12)
    arrays = {
        "a": rng.random(shape),
        "b": 4.0 + rng.random(shape),
        "c": rng.random(shape),
        "d": rng.random(shape),
        "x": np.zeros(shape),
    }
    _assert_equal(*_run_both(tridiag, arrays, origin=(0, 0, 0), domain=shape))


def test_mask_equivalence():
    @stencil
    def limiter(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a
            if a > 0.5:
                out = 0.5
            elif a < 0.2:
                out = a * 2.0

    arrays = {"a": _rand((6, 6, 4)), "out": np.zeros((6, 6, 4))}
    _assert_equal(*_run_both(limiter, arrays, origin=(0, 0, 0), domain=(6, 6, 4)))


def test_region_equivalence_both_strategies():
    def defn(v: Field, flux: Field, dt2: float):
        with computation(PARALLEL), interval(...):
            flux = dt2 * v * 0.5
            with horizontal(region[:, j_start]):
                flux = dt2 * v

    for predicated in (True, False):
        s = stencil(defn)
        # toggle the region strategy on the library-node schedule
        arrays = {"v": _rand((5, 5, 2)), "flux": np.zeros((5, 5, 2))}
        a_np = {k: v.copy() for k, v in arrays.items()}
        s(**a_np, dt2=2.0, backend="numpy", origin=(0, 0, 0), domain=(5, 5, 2))

        from repro.dsl.backend_dataflow import DataflowStencilExecutor

        ex = DataflowStencilExecutor(s)
        sdfg = ex.build_sdfg(
            {k: v.shape for k, v in arrays.items()},
            {k: v.dtype.type for k, v in arrays.items()},
            (0, 0, 0),
            (5, 5, 2),
        )
        for kern in sdfg.all_kernels():
            kern.schedule.regions_as_predication = predicated
        from repro.sdfg.codegen import compile_sdfg

        prog = compile_sdfg(sdfg)
        a_df = {k: v.copy() for k, v in arrays.items()}
        prog(arrays=a_df, scalars={"dt2": 2.0})
        _assert_equal(a_np, a_df)


def test_mixed_axes_equivalence():
    @stencil
    def mixed(a: Field, m: FieldIJ, out: Field):
        with computation(PARALLEL), interval(...):
            out = a * m

    arrays = {
        "a": _rand((4, 4, 3)),
        "m": _rand((4, 4), seed=2),
        "out": np.zeros((4, 4, 3)),
    }
    _assert_equal(*_run_both(mixed, arrays, origin=(0, 0, 0), domain=(4, 4, 3)))


def test_compiled_program_is_cached():
    @stencil
    def copy(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    from repro.dsl.backend_dataflow import DataflowStencilExecutor

    ex = DataflowStencilExecutor(copy)
    a = _rand((4, 4, 2))
    b = np.zeros_like(a)
    ex({"a": a, "b": b}, {}, (0, 0, 0), (4, 4, 2))
    assert len(ex._cache) == 1
    ex({"a": a, "b": b}, {}, (0, 0, 0), (4, 4, 2))
    assert len(ex._cache) == 1
    ex({"a": a, "b": b}, {}, (1, 1, 0), (3, 3, 2))
    assert len(ex._cache) == 2


def test_instrumented_kernel_times():
    @stencil
    def copy(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    from repro.dsl.backend_dataflow import DataflowStencilExecutor
    from repro.sdfg.codegen import compile_sdfg

    ex = DataflowStencilExecutor(copy)
    a = _rand((32, 32, 8))
    sdfg = ex.build_sdfg(
        {"a": a.shape, "b": a.shape},
        {"a": np.float64, "b": np.float64},
        (0, 0, 0),
        (32, 32, 8),
    )
    prog = compile_sdfg(sdfg, instrument=True)
    prog(arrays={"a": a, "b": np.zeros_like(a)})
    times = prog.kernel_times
    assert len(times) == 1
    (total, count), = times.values()
    assert count == 1 and total > 0.0


# ---------------------------------------------------------------------------
# out=-scheduled emission (buffer-pooled runtime)
# ---------------------------------------------------------------------------


def test_k_field_read_in_forward_computation():
    """Regression: a K-only field read at a fixed level used to hit a dead
    broadcast branch in ``_ExprEmitter.access_2d``."""
    from repro.dsl import FieldK

    @stencil
    def kscale(a: Field, coef: FieldK, out: Field):
        with computation(FORWARD), interval(...):
            out = a * coef + out[0, 0, -1]

    arrays = {
        "a": _rand((5, 4, 4)),
        "coef": _rand((4,), seed=1) + 0.5,
        "out": np.zeros((5, 4, 4)),
    }
    _assert_equal(
        *_run_both(kscale, arrays, origin=(0, 0, 1), domain=(5, 4, 3))
    )


def test_k_field_generated_source_broadcasts():
    """The emitted K-axis access must be a (1, 1) view, not a 0-d scalar
    subscripted with np.newaxis (which would raise)."""
    from repro.dsl import FieldK
    from repro.dsl.backend_dataflow import DataflowStencilExecutor
    from repro.sdfg.codegen import compile_sdfg

    @stencil
    def kcopy(a: Field, coef: FieldK, out: Field):
        with computation(FORWARD), interval(...):
            out = a * coef

    ex = DataflowStencilExecutor(kcopy)
    sdfg = ex.build_sdfg(
        {"a": (3, 3, 2), "coef": (2,), "out": (3, 3, 2)},
        {n: np.float64 for n in ("a", "coef", "out")},
        (0, 0, 0),
        (3, 3, 2),
    )
    prog = compile_sdfg(sdfg)
    assert "[np.newaxis, np.newaxis, __k" in prog.source


def test_repeated_calls_do_not_see_stale_scratch():
    """Pooled scratch is reused across calls; results must not depend on
    what a previous call left in the buffers (masked writes, read-before-
    write temporaries)."""
    @stencil
    def masked(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            if a > 0.5:
                t = a * 2.0
            out = t + a

    shape = (6, 5, 4)
    first = {"a": _rand(shape), "out": np.zeros(shape)}
    second = {"a": _rand(shape, seed=9), "out": np.zeros(shape)}
    # pollute the pool with a run on different data, then verify the next
    # run still matches the debug backend exactly
    poll = {k: v.copy() for k, v in first.items()}
    masked(**poll, backend="dataflow", origin=(0, 0, 0), domain=shape)
    _assert_equal(
        *_run_both(masked, second, origin=(0, 0, 0), domain=shape)
    )


def test_out_scheduling_toggle_is_bit_exact(monkeypatch):
    """REPRO_OUT_SCHEDULING=0 restores nested-expression emission; both
    emission modes must agree exactly."""
    import repro.runtime.compile_cache as cc
    from repro.dsl.backend_dataflow import DataflowStencilExecutor
    from repro.sdfg.codegen import compile_sdfg

    @stencil
    def flux(a: Field, cr: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = (a[1, 0, 0] - a) * cr + a * 0.5 - min(a, cr) * abs(cr)

    ex = DataflowStencilExecutor(flux)
    shapes = {n: (7, 6, 3) for n in ("a", "cr", "out")}
    sdfg = ex.build_sdfg(
        shapes, {n: np.float64 for n in shapes}, (0, 0, 0), (6, 6, 3)
    )
    arrays = {
        "a": _rand((7, 6, 3)),
        "cr": _rand((7, 6, 3), seed=2) - 0.5,
        "out": np.zeros((7, 6, 3)),
    }
    sched = {k: v.copy() for k, v in arrays.items()}
    prog = compile_sdfg(sdfg)
    assert "out=" in prog.source
    prog(arrays=sched)

    monkeypatch.setenv("REPRO_OUT_SCHEDULING", "0")
    plain = {k: v.copy() for k, v in arrays.items()}
    prog0 = compile_sdfg(sdfg)
    assert "out=" not in prog0.source
    prog0(arrays=plain)
    np.testing.assert_array_equal(sched["out"], plain["out"])


def test_compiled_program_reports_runtime_bytes():
    from repro.dsl.backend_dataflow import DataflowStencilExecutor
    from repro.sdfg.codegen import compile_sdfg

    @stencil
    def axpy(a: Field, b: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a * 2.0 + b

    ex = DataflowStencilExecutor(axpy)
    shapes = {n: (8, 8, 4) for n in ("a", "b", "out")}
    sdfg = ex.build_sdfg(
        shapes, {n: np.float64 for n in shapes}, (0, 0, 0), (8, 8, 4)
    )
    prog = compile_sdfg(sdfg)
    # at least one float64 full-domain scratch slot was planned
    assert prog.runtime_bytes >= 8 * 8 * 4 * 8


def test_missing_container_error_is_precomputed():
    from repro.dsl.backend_dataflow import DataflowStencilExecutor
    from repro.sdfg.codegen import compile_sdfg

    @stencil
    def copy(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    ex = DataflowStencilExecutor(copy)
    sdfg = ex.build_sdfg(
        {"a": (3, 3, 2), "b": (3, 3, 2)},
        {"a": np.float64, "b": np.float64},
        (0, 0, 0),
        (3, 3, 2),
    )
    prog = compile_sdfg(sdfg)
    with pytest.raises(ValueError, match="missing arrays for containers"):
        prog(arrays={"a": np.zeros((3, 3, 2))})
