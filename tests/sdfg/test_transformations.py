"""Transformation tests: every rewrite must preserve program outputs."""

import numpy as np
import pytest

from repro.dsl import Field, PARALLEL, FORWARD, computation, interval, stencil
from repro.sdfg import SDFG
from repro.sdfg.codegen import compile_sdfg
from repro.sdfg.nodes import StencilComputation
from repro.sdfg.transformations import (
    DeadKernelElimination,
    LocalStorage,
    OTFMapFusion,
    PowerExpansion,
    RedundantArrayRemoval,
    SubgraphFusion,
    apply_exhaustively,
)
from repro.sdfg.analysis import total_bytes


def _rand(shape, seed=0):
    return np.random.default_rng(seed).random(shape)


@stencil
def _double(a: Field, t: Field):
    with computation(PARALLEL), interval(...):
        t = a * 2.0


@stencil
def _shift_add(t: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = t[-1, 0, 0] + t[1, 0, 0]


@stencil
def _incr(a: Field, b: Field):
    with computation(PARALLEL), interval(...):
        b = a + 1.0


@stencil
def _copy(a: Field, b: Field):
    with computation(PARALLEL), interval(...):
        b = a


def _two_stencil_sdfg(shape=(10, 8, 4), domain=(8, 6, 4), origin=(1, 1, 0)):
    """producer (a -> t, transient) then consumer (t -> out).

    The producer runs on a domain extended by one point in i so that it
    covers the consumer's ±1 reads of t (as the FV3 modules do when calling
    stencils on extended compute domains).
    """
    sdfg = SDFG("prog")
    sdfg.add_array("a", shape)
    sdfg.add_array("out", shape)
    sdfg.add_transient("t", shape)
    state = sdfg.add_state("s0")
    prod_origin = (origin[0] - 1, origin[1], origin[2])
    prod_domain = (domain[0] + 2, domain[1], domain[2])
    state.add(
        StencilComputation(
            _double.definition, _double.extents,
            mapping={"a": "a", "t": "t"},
            domain=prod_domain, origin=prod_origin,
        )
    )
    state.add(
        StencilComputation(
            _shift_add.definition, _shift_add.extents,
            mapping={"t": "t", "out": "out"}, domain=domain, origin=origin,
        )
    )
    sdfg.expand_library_nodes()
    return sdfg


def _run(sdfg, arrays, scalars=None):
    data = {k: v.copy() for k, v in arrays.items()}
    compile_sdfg(sdfg)(arrays=data, scalars=scalars or {})
    return data


def test_otf_fusion_preserves_output_and_removes_transient():
    sdfg = _two_stencil_sdfg()
    arrays = {"a": _rand((10, 8, 4)), "out": np.zeros((10, 8, 4))}
    ref = _run(sdfg, arrays)

    sdfg2 = _two_stencil_sdfg()
    xf = OTFMapFusion()
    assert xf.apply_first(sdfg2)
    assert "t" not in sdfg2.arrays
    assert len(sdfg2.states[0].kernels) == 1
    got = _run(sdfg2, arrays)
    np.testing.assert_array_equal(ref["out"], got["out"])


def test_otf_fusion_reduces_modeled_bytes():
    before = _two_stencil_sdfg()
    after = _two_stencil_sdfg()
    OTFMapFusion().apply_first(after)
    assert total_bytes(after) < total_bytes(before)


def test_otf_fusion_refuses_nontransient_target():
    sdfg = SDFG("prog")
    shape, domain, origin = (10, 8, 4), (8, 6, 4), (1, 1, 0)
    sdfg.add_array("a", shape)
    sdfg.add_array("t", shape)  # NOT transient: externally visible
    sdfg.add_array("out", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_double.definition, _double.extents,
                                 mapping={"a": "a", "t": "t"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_shift_add.definition, _shift_add.extents,
                                 mapping={"t": "t", "out": "out"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    assert not OTFMapFusion().apply_first(sdfg)


def test_subgraph_fusion_independent_kernels():
    sdfg = SDFG("prog")
    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    for name in ("a", "b", "x", "y"):
        sdfg.add_array(name, shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "a", "b": "x"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "b", "b": "y"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    arrays = {n: _rand(shape, i) for i, n in enumerate(("a", "b"))}
    arrays.update({"x": np.zeros(shape), "y": np.zeros(shape)})
    ref = _run(sdfg, arrays)

    assert SubgraphFusion().apply_first(sdfg)
    assert len(sdfg.states[0].kernels) == 1
    kern = sdfg.states[0].kernels[0]
    assert len(kern.constituents) == 2
    got = _run(sdfg, arrays)
    for n in ("x", "y"):
        np.testing.assert_array_equal(ref[n], got[n])


def test_subgraph_fusion_rejects_offset_dependency():
    # consumer reads producer output at ±1: thread-level fusion illegal
    sdfg = _two_stencil_sdfg()
    assert not SubgraphFusion().apply_first(sdfg)


def test_subgraph_fusion_allows_zero_offset_dependency():
    sdfg = SDFG("prog")
    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    for name in ("a", "m", "out"):
        sdfg.add_array(name, shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "a", "b": "m"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "m", "b": "out"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    arrays = {"a": _rand(shape), "m": np.zeros(shape), "out": np.zeros(shape)}
    ref = _run(sdfg, arrays)
    assert SubgraphFusion().apply_first(sdfg)
    got = _run(sdfg, arrays)
    np.testing.assert_array_equal(ref["out"], got["out"])


def test_redundant_array_removal():
    sdfg = SDFG("prog")
    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    sdfg.add_array("a", shape)
    sdfg.add_array("out", shape)
    sdfg.add_transient("cpy", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_copy.definition, _copy.extents,
                                 mapping={"a": "a", "b": "cpy"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "cpy", "b": "out"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    arrays = {"a": _rand(shape), "out": np.zeros(shape)}
    ref = _run(sdfg, arrays)

    assert RedundantArrayRemoval().apply_first(sdfg)
    assert "cpy" not in sdfg.arrays
    assert len(sdfg.states[0].kernels) == 1
    got = _run(sdfg, arrays)
    np.testing.assert_array_equal(ref["out"], got["out"])


def test_redundant_array_blocked_by_source_redefinition():
    sdfg = SDFG("prog")
    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    sdfg.add_array("a", shape)
    sdfg.add_array("out", shape)
    sdfg.add_transient("cpy", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_copy.definition, _copy.extents,
                                 mapping={"a": "a", "b": "cpy"},
                                 domain=domain, origin=origin))
    # a is overwritten between the copy and cpy's reader
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "out", "b": "a"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "cpy", "b": "out"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    assert not RedundantArrayRemoval().apply_first(sdfg)


def test_dead_kernel_elimination():
    sdfg = SDFG("prog")
    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    sdfg.add_array("a", shape)
    sdfg.add_array("out", shape)
    sdfg.add_transient("unused", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "a", "b": "unused"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_incr.definition, _incr.extents,
                                 mapping={"a": "a", "b": "out"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    assert DeadKernelElimination().apply_first(sdfg)
    assert len(sdfg.states[0].kernels) == 1
    assert "unused" not in sdfg.arrays


def test_power_expansion_rewrites_and_preserves():
    @stencil
    def smag(delpc: Field, vort: Field, dt: float):
        with computation(PARALLEL), interval(...):
            vort = dt * (delpc**2.0 + vort**2.0) ** 0.5

    shape, domain, origin = (6, 6, 3), (6, 6, 3), (0, 0, 0)
    sdfg = SDFG("prog")
    sdfg.add_array("delpc", shape)
    sdfg.add_array("vort", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(
        smag.definition, smag.extents,
        mapping={"delpc": "delpc", "vort": "vort"},
        domain=domain, origin=origin,
        scalar_mapping={"dt": "dt"},
    ))
    sdfg.expand_library_nodes()
    arrays = {"delpc": _rand(shape), "vort": _rand(shape, 1)}
    ref = _run(sdfg, arrays, scalars={"dt": 0.1})

    flops_before = sdfg.all_kernels()[0].flops()
    assert PowerExpansion().apply_first(sdfg)
    flops_after = sdfg.all_kernels()[0].flops()
    assert flops_after < flops_before
    # no power operator remains
    src = compile_sdfg(sdfg).source
    assert "**" not in src
    assert "np.sqrt" in src
    got = _run(sdfg, arrays, scalars={"dt": 0.1})
    np.testing.assert_allclose(ref["vort"], got["vort"], rtol=1e-14)


def test_local_storage_marks_vertical_solver_fields():
    @stencil
    def fwd(a: Field, out: Field):
        with computation(FORWARD):
            with interval(0, 1):
                out = a
            with interval(1, None):
                out = out[0, 0, -1] * 0.5 + a + a

    shape = (4, 4, 6)
    sdfg = SDFG("prog")
    sdfg.add_array("a", shape)
    sdfg.add_array("out", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(fwd.definition, fwd.extents,
                                 mapping={"a": "a", "out": "out"},
                                 domain=shape, origin=(0, 0, 0)))
    sdfg.expand_library_nodes()
    kern = sdfg.all_kernels()[0]
    excess_before = kern.excess_access_bytes(sdfg)
    assert excess_before > 0
    applied = apply_exhaustively(sdfg, [LocalStorage()])
    assert applied >= 1
    assert kern.schedule.cached_fields  # something got cached
    assert kern.excess_access_bytes(sdfg) < excess_before


def test_apply_exhaustively_reaches_fixpoint():
    sdfg = _two_stencil_sdfg()
    n = apply_exhaustively(sdfg, [OTFMapFusion(), DeadKernelElimination()])
    assert n == 1  # one OTF fusion, then nothing else applies
    assert len(sdfg.states[0].kernels) == 1


def test_validation_passes_on_transformed_graph():
    sdfg = _two_stencil_sdfg()
    apply_exhaustively(sdfg, [OTFMapFusion()])
    sdfg.validate()


# ---------------------------------------------------------------------------
# Fusion legality guards
# ---------------------------------------------------------------------------

def test_otf_fusion_skips_interval_deactivated_consumer_read():
    # the consumer's only read of t sits in an interval that resolves
    # empty for this K size: there is no dataflow to fuse over, and
    # can_apply must say so instead of raising
    @stencil
    def _cold_read(t: Field, out: Field):
        with computation(PARALLEL):
            with interval(0, 3):
                out = 1.0
            with interval(3, None):
                out = t  # never executes when nk == 3

    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    sdfg = SDFG("prog")
    sdfg.add_array("a", shape)
    sdfg.add_array("out", shape)
    sdfg.add_transient("t", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_double.definition, _double.extents,
                                 mapping={"a": "a", "t": "t"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_cold_read.definition, _cold_read.extents,
                                 mapping={"t": "t", "out": "out"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    xf = OTFMapFusion()
    (candidate,) = xf.candidates(sdfg, sdfg.states[0])
    assert not xf.can_apply(sdfg, sdfg.states[0], candidate)
    assert not xf.apply_first(sdfg)


def test_otf_fusion_refuses_disjoint_producer_write():
    # producer writes only the lower K levels of t, consumer reads only
    # the upper ones: the subsets are disjoint, so inlining the producer
    # expression would fabricate values the producer never computed
    @stencil
    def _low_write(a: Field, t: Field):
        with computation(PARALLEL), interval(0, 1):
            t = a * 2.0

    @stencil
    def _high_read(t: Field, out: Field):
        with computation(PARALLEL), interval(1, None):
            out = t

    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    sdfg = SDFG("prog")
    sdfg.add_array("a", shape)
    sdfg.add_array("out", shape)
    sdfg.add_transient("t", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_low_write.definition, _low_write.extents,
                                 mapping={"a": "a", "t": "t"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_high_read.definition, _high_read.extents,
                                 mapping={"t": "t", "out": "out"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    assert not OTFMapFusion().apply_first(sdfg)


def test_subgraph_fusion_rejects_write_after_read_hazard():
    # kernel 1 reads t at +/-1, kernel 2 overwrites t: inside one map
    # scope a neighbouring thread's write races the offset read (WAR)
    shape, domain, origin = (8, 8, 3), (6, 6, 3), (1, 1, 0)
    sdfg = SDFG("prog")
    sdfg.add_array("a", shape)
    sdfg.add_array("t", shape)
    sdfg.add_array("out", shape)
    state = sdfg.add_state("s0")
    state.add(StencilComputation(_shift_add.definition, _shift_add.extents,
                                 mapping={"t": "t", "out": "out"},
                                 domain=domain, origin=origin))
    state.add(StencilComputation(_double.definition, _double.extents,
                                 mapping={"a": "a", "t": "t"},
                                 domain=domain, origin=origin))
    sdfg.expand_library_nodes()
    assert not SubgraphFusion().apply_first(sdfg)


def test_subgraph_fusion_allows_disjoint_offset_ranges():
    # the reader touches x at a K offset, but only levels the writer
    # provably never writes (Range.intersection is None): no dependency,
    # fusion is legal and must now be accepted
    @stencil
    def _low_half_write(a: Field, x: Field):
        with computation(PARALLEL), interval(0, 2):
            x = a * 2.0

    @stencil
    def _high_shift_read(x: Field, out: Field):
        with computation(PARALLEL), interval(0, 2):
            out = x[0, 0, 2]

    shape, domain, origin = (8, 8, 4), (6, 6, 4), (1, 1, 0)

    def build():
        sdfg = SDFG("prog")
        sdfg.add_array("a", shape)
        sdfg.add_array("x", shape)
        sdfg.add_array("out", shape)
        state = sdfg.add_state("s0")
        state.add(StencilComputation(
            _low_half_write.definition, _low_half_write.extents,
            mapping={"a": "a", "x": "x"}, domain=domain, origin=origin))
        state.add(StencilComputation(
            _high_shift_read.definition, _high_shift_read.extents,
            mapping={"x": "x", "out": "out"}, domain=domain, origin=origin))
        sdfg.expand_library_nodes()
        return sdfg

    arrays = {
        "a": _rand(shape),
        "x": _rand(shape, 1),
        "out": np.zeros(shape),
    }
    ref = _run(build(), arrays)

    fused = build()
    assert SubgraphFusion().apply_first(fused)
    assert len(fused.states[0].kernels) == 1
    fused.validate()
    got = _run(fused, arrays)
    for n in ("x", "out"):
        np.testing.assert_array_equal(ref[n], got[n])
