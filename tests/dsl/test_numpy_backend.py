"""NumPy backend semantics tests (the DSL's reference semantics)."""

import numpy as np
import pytest

from repro.dsl import (
    BACKWARD,
    FORWARD,
    PARALLEL,
    Field,
    FieldIJ,
    FieldK,
    computation,
    horizontal,
    i_end,
    i_start,
    interval,
    j_start,
    region,
    stencil,
)
from repro.dsl.backend_numpy import GridBounds


def _rand(shape, seed=0):
    return np.random.default_rng(seed).random(shape)


def test_copy_stencil():
    @stencil
    def copy(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    a = _rand((6, 5, 4))
    b = np.zeros_like(a)
    copy(a, b, origin=(0, 0, 0), domain=(6, 5, 4))
    np.testing.assert_array_equal(a, b)


def test_laplacian_matches_reference():
    @stencil
    def lap(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a[-1, 0, 0] + a[1, 0, 0] + a[0, -1, 0] + a[0, 1, 0] - 4.0 * a

    a = _rand((8, 8, 3))
    out = np.zeros_like(a)
    lap(a, out)  # default origin=(1,1,0), domain inferred
    ref = (
        a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:] - 4.0 * a[1:-1, 1:-1]
    )
    np.testing.assert_allclose(out[1:-1, 1:-1], ref)
    # halo untouched
    assert np.all(out[0] == 0) and np.all(out[-1] == 0)


def test_statement_order_semantics_updated_values():
    # second statement reads the value the first statement just wrote
    @stencil
    def seq(a: Field, b: Field, c: Field):
        with computation(PARALLEL), interval(...):
            b = a * 2.0
            c = b * 3.0

    a = _rand((4, 4, 2))
    b = np.zeros_like(a)
    c = np.zeros_like(a)
    seq(a, b, c, origin=(0, 0, 0), domain=(4, 4, 2))
    np.testing.assert_allclose(c, a * 6.0)


def test_forward_solver_cumulative_sum():
    @stencil
    def cumsum(a: Field, out: Field):
        with computation(FORWARD):
            with interval(0, 1):
                out = a
            with interval(1, None):
                out = out[0, 0, -1] + a

    a = _rand((3, 3, 10))
    out = np.zeros_like(a)
    cumsum(a, out, origin=(0, 0, 0), domain=(3, 3, 10))
    np.testing.assert_allclose(out, np.cumsum(a, axis=2))


def test_backward_solver():
    @stencil
    def back(a: Field, out: Field):
        with computation(BACKWARD):
            with interval(-1, None):
                out = a
            with interval(0, -1):
                out = out[0, 0, 1] + a

    a = _rand((3, 3, 8))
    out = np.zeros_like(a)
    back(a, out, origin=(0, 0, 0), domain=(3, 3, 8))
    np.testing.assert_allclose(out, np.cumsum(a[:, :, ::-1], axis=2)[:, :, ::-1])


def test_tridiagonal_thomas_solver_matches_scipy():
    from scipy.linalg import solve_banded

    @stencil
    def tridiag(a: Field, b: Field, c: Field, d: Field, x: Field):
        # Thomas algorithm: forward sweep then back substitution
        with computation(FORWARD):
            with interval(0, 1):
                w = c / b
                g = d / b
            with interval(1, None):
                w = c / (b - a * w[0, 0, -1])
                g = (d - a * g[0, 0, -1]) / (b - a * w[0, 0, -1])
        with computation(BACKWARD):
            with interval(-1, None):
                x = g
            with interval(0, -1):
                x = g - w * x[0, 0, 1]

    rng = np.random.default_rng(42)
    nk = 20
    shape = (2, 2, nk)
    b = 4.0 + rng.random(shape)  # diagonally dominant
    a = rng.random(shape)
    c = rng.random(shape)
    d = rng.random(shape)
    x = np.zeros(shape)
    tridiag(a, b, c, d, x, origin=(0, 0, 0), domain=shape)

    for i in range(2):
        for j in range(2):
            ab = np.zeros((3, nk))
            ab[0, 1:] = c[i, j, :-1]
            ab[1, :] = b[i, j, :]
            ab[2, :-1] = a[i, j, 1:]
            ref = solve_banded((1, 1), ab, d[i, j])
            np.testing.assert_allclose(x[i, j], ref, rtol=1e-12)


def test_masked_assignment_preserves_old_values():
    @stencil
    def relu(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = 0.0
            if a > 0.5:
                out = a

    a = _rand((5, 5, 3))
    out = np.full_like(a, -1.0)
    relu(a, out, origin=(0, 0, 0), domain=(5, 5, 3))
    np.testing.assert_allclose(out, np.where(a > 0.5, a, 0.0))


def test_if_elif_else_chain():
    @stencil
    def tri(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            if a < 0.25:
                out = 1.0
            elif a < 0.75:
                out = 2.0
            else:
                out = 3.0

    a = _rand((6, 6, 2))
    out = np.zeros_like(a)
    tri(a, out, origin=(0, 0, 0), domain=(6, 6, 2))
    ref = np.where(a < 0.25, 1.0, np.where(a < 0.75, 2.0, 3.0))
    np.testing.assert_allclose(out, ref)


def test_temporary_extent_execution():
    # smoothing through a temporary requires computing it on an extended domain
    @stencil
    def smooth(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = (a[-1, 0, 0] + a[1, 0, 0]) * 0.5
            out = (t[-1, 0, 0] + t[1, 0, 0]) * 0.5

    n = 10
    a = _rand((n, 3, 2))
    out = np.zeros_like(a)
    smooth(a, out, origin=(2, 0, 0), domain=(n - 4, 3, 2))
    t_ref = (a[:-2] + a[2:]) * 0.5  # t[i] for i in [1, n-1)
    ref = (t_ref[:-2] + t_ref[2:]) * 0.5  # out[i] for i in [2, n-2)
    np.testing.assert_allclose(out[2:-2], ref)


def test_2d_and_k_fields_broadcast():
    @stencil
    def mixed(a: Field, m: FieldIJ, w: FieldK, out: Field):
        with computation(PARALLEL), interval(...):
            out = a * m + w

    a = _rand((4, 5, 6))
    m = _rand((4, 5), seed=1)
    w = _rand((6,), seed=2)
    out = np.zeros_like(a)
    mixed(a, m, w, out, origin=(0, 0, 0), domain=(4, 5, 6))
    np.testing.assert_allclose(out, a * m[:, :, None] + w[None, None, :])


def test_k_index_expression():
    @stencil
    def levels(out: Field):
        with computation(PARALLEL), interval(...):
            out = K_INDEX * 1.0  # noqa: F821 - DSL axis index

    out = np.zeros((2, 2, 5))
    levels(out, origin=(0, 0, 0), domain=(2, 2, 5))
    np.testing.assert_allclose(out[0, 0], np.arange(5.0))


def test_horizontal_region_single_row():
    @stencil
    def edge(v: Field, flux: Field, dt2: float):
        with computation(PARALLEL), interval(...):
            flux = dt2 * v * 0.5
            with horizontal(region[:, j_start]):
                flux = dt2 * v

    v = np.ones((4, 4, 2))
    flux = np.zeros_like(v)
    edge(v, flux, 2.0, origin=(0, 0, 0), domain=(4, 4, 2))
    np.testing.assert_allclose(flux[:, 0], 2.0)
    np.testing.assert_allclose(flux[:, 1:], 1.0)


def test_horizontal_region_distributed_bounds():
    @stencil
    def edge(v: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = v
            with horizontal(region[i_start, :]):
                out = -v

    v = np.ones((4, 4, 1))
    # rank that does NOT own the tile's i_start edge: region must not apply
    out = np.zeros_like(v)
    interior = GridBounds(origin=(4, 0), tile_shape=(12, 4))
    edge(v, out, origin=(0, 0, 0), domain=(4, 4, 1), bounds=interior)
    np.testing.assert_allclose(out, 1.0)
    # rank that owns the edge
    out2 = np.zeros_like(v)
    owner = GridBounds(origin=(0, 0), tile_shape=(12, 4))
    edge(v, out2, origin=(0, 0, 0), domain=(4, 4, 1), bounds=owner)
    np.testing.assert_allclose(out2[0], -1.0)
    np.testing.assert_allclose(out2[1:], 1.0)


def test_region_slice_between_anchors():
    @stencil
    def band(out: Field):
        with computation(PARALLEL), interval(...):
            out = 0.0
            with horizontal(region[i_start + 1 : i_end, :]):
                out = 1.0

    out = np.zeros((6, 3, 1))
    band(out, origin=(0, 0, 0), domain=(6, 3, 1))
    # i_end is the last point; slice [start+1, end) covers indices 1..4
    np.testing.assert_allclose(out[0], 0.0)
    np.testing.assert_allclose(out[1:5], 1.0)
    np.testing.assert_allclose(out[5], 0.0)


def test_shape_validation_error():
    @stencil
    def lap(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a[-1, 0, 0] + a[1, 0, 0]

    a = np.zeros((4, 4, 2))
    out = np.zeros_like(a)
    with pytest.raises(ValueError, match="cannot satisfy accesses"):
        lap(a, out, origin=(0, 0, 0), domain=(4, 4, 2))


def test_missing_argument_error():
    @stencil
    def copy(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    with pytest.raises(TypeError, match="missing argument"):
        copy(np.zeros((2, 2, 2)), origin=(0, 0, 0), domain=(2, 2, 2))


def test_scalar_parameters_used_in_expression():
    @stencil
    def axpy(x: Field, y: Field, alpha: float):
        with computation(PARALLEL), interval(...):
            y = alpha * x + y

    x = _rand((3, 3, 3))
    y = _rand((3, 3, 3), seed=9)
    y0 = y.copy()
    axpy(x, y, 2.5, origin=(0, 0, 0), domain=(3, 3, 3))
    np.testing.assert_allclose(y, 2.5 * x + y0)


def test_math_functions():
    @stencil
    def funcs(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = sqrt(abs(a)) + min(a, 0.5) * max(a, 0.5)  # noqa: F821

    a = _rand((3, 3, 2)) - 0.5
    out = np.zeros_like(a)
    funcs(a, out, origin=(0, 0, 0), domain=(3, 3, 2))
    ref = np.sqrt(np.abs(a)) + np.minimum(a, 0.5) * np.maximum(a, 0.5)
    np.testing.assert_allclose(out, ref)


def test_smagorinsky_power_motif():
    """The paper's Sec. VI-C1 kernel: vort = dt*(delpc**2 + vort**2)**0.5."""

    @stencil
    def smag(delpc: Field, vort: Field, dt: float):
        with computation(PARALLEL), interval(...):
            vort = dt * (delpc**2.0 + vort**2.0) ** 0.5

    delpc = _rand((4, 4, 3))
    vort = _rand((4, 4, 3), seed=5)
    ref = 0.1 * np.sqrt(delpc**2 + vort**2)
    smag(delpc, vort, 0.1, origin=(0, 0, 0), domain=(4, 4, 3))
    np.testing.assert_allclose(vort, ref)
