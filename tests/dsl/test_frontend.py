"""Frontend parsing tests: DSL syntax → stencil IR."""

import numpy as np
import pytest

from repro.dsl import (
    BACKWARD,
    FORWARD,
    PARALLEL,
    Field,
    FieldIJ,
    computation,
    function,
    horizontal,
    i_start,
    interval,
    j_end,
    region,
    stencil,
)
from repro.dsl.frontend import StencilSyntaxError, parse_stencil
from repro.dsl.ir import (
    Assign,
    BinOp,
    Call,
    FieldAccess,
    Literal,
    ScalarRef,
    Ternary,
    UnaryOp,
)


def test_parse_simple_parallel_stencil():
    def copy(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    sd = parse_stencil(copy)
    assert sd.name == "copy"
    assert [p.name for p in sd.field_params] == ["a", "b"]
    assert len(sd.computations) == 1
    comp = sd.computations[0]
    assert comp.order == PARALLEL
    (stmt,) = comp.statements()
    assert stmt.target == FieldAccess("b")
    assert stmt.value == FieldAccess("a")


def test_parse_offsets_and_scalars():
    def lap(a: Field, out: Field, w: float):
        with computation(PARALLEL), interval(...):
            out = w * (a[-1, 0, 0] + a[1, 0, 0] + a[0, -1, 0] + a[0, 1, 0] - 4.0 * a)

    sd = parse_stencil(lap)
    (stmt,) = sd.statements()
    offsets = {
        n.offset
        for n in _walk(stmt.value)
        if isinstance(n, FieldAccess) and n.name == "a"
    }
    assert offsets == {(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, 0)}
    assert any(isinstance(n, ScalarRef) and n.name == "w" for n in _walk(stmt.value))


def _walk(expr):
    from repro.dsl.ir import walk_expr

    return list(walk_expr(expr))


def test_k_only_offset_shorthand_rejected_for_wrong_arity():
    def bad(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a[0, 0]

    with pytest.raises(StencilSyntaxError):
        parse_stencil(bad)


def test_variable_offset_rejected():
    def bad(a: Field, b: Field, n: int):
        with computation(PARALLEL), interval(...):
            b = a[n, 0, 0]

    with pytest.raises(StencilSyntaxError, match="variable offsets"):
        parse_stencil(bad)


def test_temporary_field_detection():
    def tmp(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = a * 2.0
            out = t[-1, 0, 0] + t

    sd = parse_stencil(tmp)
    assert "t" in sd.temporaries
    assert len(sd.statements()) == 2


def test_scalar_local_is_folded_not_stored():
    def scal(a: Field, out: Field, dt: float):
        with computation(PARALLEL), interval(...):
            dt2 = dt * 0.5
            out = a * dt2

    sd = parse_stencil(scal)
    assert sd.temporaries == {}
    (stmt,) = sd.statements()
    # dt2 folded into the expression
    assert isinstance(stmt.value, BinOp)
    assert isinstance(stmt.value.right, BinOp)


def test_if_else_lowered_to_masks():
    def cond(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            if a > 0.0:
                out = a
            else:
                out = -a

    sd = parse_stencil(cond)
    s1, s2 = sd.statements()
    assert isinstance(s1.mask, BinOp) and s1.mask.op == ">"
    assert isinstance(s2.mask, UnaryOp) and s2.mask.op == "not"


def test_nested_if_masks_composed():
    def cond(a: Field, b: Field, out: Field):
        with computation(PARALLEL), interval(...):
            if a > 0.0:
                if b > 0.0:
                    out = a + b

    sd = parse_stencil(cond)
    (stmt,) = sd.statements()
    assert isinstance(stmt.mask, BinOp) and stmt.mask.op == "and"


def test_intervals_forward_backward():
    def solver(a: Field, out: Field):
        with computation(FORWARD):
            with interval(0, 1):
                out = a
            with interval(1, None):
                out = out[0, 0, -1] + a
        with computation(BACKWARD), interval(0, -1):
            out = out[0, 0, 1] * 0.5

    sd = parse_stencil(solver)
    assert sd.computations[0].order == FORWARD
    assert len(sd.computations[0].intervals) == 2
    iv0, iv1 = (b.interval for b in sd.computations[0].intervals)
    assert iv0.resolve(10) == (0, 1)
    assert iv1.resolve(10) == (1, 10)
    assert sd.computations[1].intervals[0].interval.resolve(10) == (0, 9)


def test_horizontal_region_attached():
    def edge(v: Field, flux: Field, dt2: float):
        with computation(PARALLEL), interval(...):
            flux = dt2 * v * 0.5
            with horizontal(region[:, j_end]):
                flux = dt2 * v

    sd = parse_stencil(edge)
    s1, s2 = sd.statements()
    assert s1.region is None
    assert s2.region is not None
    assert s2.region.j.single
    assert s2.region.i.is_full


def test_region_with_anchor_arithmetic():
    def edge(v: Field, flux: Field):
        with computation(PARALLEL), interval(...):
            with horizontal(region[i_start + 1, :]):
                flux = v * 2.0

    sd = parse_stencil(edge)
    (stmt,) = sd.statements()
    assert stmt.region.i.start.offset == 1


def test_function_inlining_single_return():
    @function
    def mean2(x, y):
        return 0.5 * (x + y)

    def user(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = mean2(a, a[1, 0, 0])

    sd = parse_stencil(user)
    (stmt,) = sd.statements()
    assert isinstance(stmt.value, BinOp)
    accesses = [n for n in _walk(stmt.value) if isinstance(n, FieldAccess)]
    assert {a.offset for a in accesses} == {(0, 0, 0), (1, 0, 0)}


def test_function_inlining_with_body_and_tuple_return():
    @function
    def minmax(x, y):
        lo = min(x, y)
        hi = max(x, y)
        return lo, hi

    def user(a: Field, b: Field, lo: Field, hi: Field):
        with computation(PARALLEL), interval(...):
            lo, hi = minmax(a, b)

    sd = parse_stencil(user)
    stmts = sd.statements()
    # two renamed function locals plus the two unpacking copies
    assert len(stmts) == 4
    assert {s.target.name for s in stmts[-2:]} == {"lo", "hi"}
    assert all(name.startswith("_minmax_") for name in sd.temporaries)


def test_function_param_reassignment_is_isolated():
    @function
    def clamp01(x):
        x = min(x, 1.0)
        x = max(x, 0.0)
        return x

    def user(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = clamp01(a * 2.0)

    sd = parse_stencil(user)
    # `a` must not appear as an assignment target anywhere
    assert all(s.target.name != "a" for s in sd.statements())


def test_function_offset_access_of_function_result():
    @function
    def twice(x):
        return 2.0 * x

    def user(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = twice(a)
            out = t[1, 0, 0]

    sd = parse_stencil(user)
    assert "t" in sd.temporaries


def test_externals_folding():
    def scaled(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a * FACTOR

    sd = parse_stencil(scaled, externals={"FACTOR": 3.0})
    (stmt,) = sd.statements()
    assert Literal(3.0) in list(_walk(stmt.value))


def test_unknown_symbol_raises():
    def bad(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a * mystery

    with pytest.raises(StencilSyntaxError, match="unknown symbol"):
        parse_stencil(bad)


def test_calling_builtin_context_manager_outside_stencil_raises():
    with pytest.raises(TypeError):
        computation(PARALLEL)
    with pytest.raises(TypeError):
        interval(0, 1)


def test_ternary_expression():
    def tern(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a if a > 0.0 else 0.0

    sd = parse_stencil(tern)
    (stmt,) = sd.statements()
    assert isinstance(stmt.value, Ternary)


def test_augmented_assignment():
    def aug(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a
            out += 1.0

    sd = parse_stencil(aug)
    s1, s2 = sd.statements()
    assert isinstance(s2.value, BinOp) and s2.value.op == "+"


def test_min_max_varargs():
    def mm(a: Field, b: Field, c: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = min(a, b, c)

    sd = parse_stencil(mm)
    (stmt,) = sd.statements()
    assert isinstance(stmt.value, Call)
    assert isinstance(stmt.value.args[0], Call)  # nested min


def test_2d_field_annotation():
    def mixed(a: Field, m: FieldIJ, out: Field):
        with computation(PARALLEL), interval(...):
            out = a * m

    sd = parse_stencil(mixed)
    assert sd.field_type("m").axes == "IJ"


def test_interval_bound_validation():
    def bad(a: Field, out: Field):
        with computation(PARALLEL), interval(0, 0):
            out = a

    with pytest.raises(StencilSyntaxError):
        parse_stencil(bad)


def test_statement_outside_with_rejected():
    def bad(a: Field, out: Field):
        out = a  # noqa: F841 - intentionally outside computation

    with pytest.raises(StencilSyntaxError):
        parse_stencil(bad)


def test_stencil_decorator_bare_and_with_options():
    @stencil
    def s1(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    @stencil(backend="numpy", name="renamed")
    def s2(a: Field, b: Field):
        with computation(PARALLEL), interval(...):
            b = a

    assert s1.name == "s1"
    assert s2.name == "renamed"
    assert s2.backend == "numpy"
    assert s1.field_names == ["a", "b"]
