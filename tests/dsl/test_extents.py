"""Extent/halo inference tests."""

from repro.dsl import Field, PARALLEL, computation, interval
from repro.dsl.extents import Extent, compute_extents
from repro.dsl.frontend import parse_stencil


def test_extent_union_and_shift():
    a = Extent(-1, 2, 0, 0)
    b = Extent(0, 0, -3, 1)
    u = a.union(b)
    assert (u.i_lo, u.i_hi, u.j_lo, u.j_hi) == (-1, 2, -3, 1)
    s = a.shifted((2, -1, 0)).normalized()
    assert (s.i_lo, s.i_hi) == (0, 4)
    assert (s.j_lo, s.j_hi) == (-1, 0)


def test_halo_width():
    assert Extent(-2, 1, -1, 3).halo_width == 3
    assert Extent().halo_width == 0


def test_direct_read_extent():
    def lap(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a[-1, 0, 0] + a[1, 0, 0] + a[0, -1, 0] + a[0, 1, 0]

    ext = compute_extents(parse_stencil(lap))
    fa = ext.field_extents["a"]
    assert (fa.i_lo, fa.i_hi, fa.j_lo, fa.j_hi) == (-1, 1, -1, 1)
    assert ext.max_halo() == 1


def test_transitive_extent_through_temporary():
    def lap2(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = a[-1, 0, 0] + a[1, 0, 0] - 2.0 * a
            out = t[-1, 0, 0] + t[1, 0, 0] - 2.0 * t

    sd = parse_stencil(lap2)
    ext = compute_extents(sd)
    # t must be computed one point beyond the domain in i
    t_ext = ext.field_extents["t"]
    assert (t_ext.i_lo, t_ext.i_hi) == (-1, 1)
    # a is read at ±1 from points that are themselves ±1 out: halo 2
    fa = ext.field_extents["a"]
    assert (fa.i_lo, fa.i_hi) == (-2, 2)
    assert ext.max_halo() == 2
    # the producing statement carries the extended extent
    s_ext = ext.stmt_extents[0]
    assert (s_ext.i_lo, s_ext.i_hi) == (-1, 1)


def test_three_level_chain():
    def chain(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t1 = a[1, 0, 0]
            t2 = t1[1, 0, 0]
            out = t2[1, 0, 0]

    ext = compute_extents(parse_stencil(chain))
    assert ext.field_extents["a"].i_hi == 3
    assert ext.stmt_extents[0].i_hi == 2
    assert ext.stmt_extents[1].i_hi == 1
    assert ext.stmt_extents[2].i_hi == 0


def test_k_offsets_tracked_for_allocation():
    def vert(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            t = a
            out = t[0, 0, -1] + t[0, 0, 1]

    ext = compute_extents(parse_stencil(vert))
    t_ext = ext.field_extents["t"]
    assert (t_ext.k_lo, t_ext.k_hi) == (-1, 1)


def test_output_only_fields_have_zero_extent():
    def copy(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a

    ext = compute_extents(parse_stencil(copy))
    assert ext.field_extents["out"] == Extent.zero()


def test_masked_statement_reads_own_target():
    def masked(a: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = a
            if a > 0.0:
                out = out[1, 0, 0]

    ext = compute_extents(parse_stencil(masked))
    # the first write of `out` must cover the +1 read of the second
    assert ext.stmt_extents[0].i_hi == 1
