"""Backend registry, default-backend management and deprecation shims."""

import sys

import numpy as np
import pytest

import repro.dsl.stencil  # noqa: F401 -- for the sys.modules lookup below
from repro.dsl import (
    Field,
    PARALLEL,
    UnknownBackendError,
    available_backends,
    computation,
    default_backend,
    get_backend,
    interval,
    register_backend,
    stencil,
)
from repro.dsl.backends import current_default_backend, unregister_backend

_STENCIL_MODULE = sys.modules["repro.dsl.stencil"]


@stencil
def _double(a: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = 2.0 * a


class _RecordingExecutor:
    """Backend executor that records calls instead of computing."""

    calls = []

    def __init__(self, stencil_object):
        self.stencil_object = stencil_object

    def __call__(self, fields, scalars, origin, domain, bounds):
        self.calls.append((self.stencil_object.name, domain))


@pytest.fixture
def recording_backend():
    _RecordingExecutor.calls = []
    register_backend("recording", _RecordingExecutor)
    try:
        yield _RecordingExecutor
    finally:
        unregister_backend("recording")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_builtins_are_available_and_lazily_resolvable():
    names = available_backends()
    assert "numpy" in names and "dataflow" in names
    assert names == tuple(sorted(names))
    assert callable(get_backend("numpy"))
    assert callable(get_backend("dataflow"))


def test_register_lookup_unregister(recording_backend):
    assert get_backend("recording") is recording_backend
    assert "recording" in available_backends()
    unregister_backend("recording")
    assert "recording" not in available_backends()
    unregister_backend("recording")  # idempotent


def test_duplicate_registration_requires_replace(recording_backend):
    with pytest.raises(ValueError, match="already registered"):
        register_backend("recording", recording_backend)
    register_backend("recording", recording_backend, replace=True)


def test_registration_validates_name_and_factory():
    with pytest.raises(TypeError):
        register_backend("", _RecordingExecutor)
    with pytest.raises(TypeError):
        register_backend(None, _RecordingExecutor)
    with pytest.raises(TypeError):
        register_backend("bad", "not-callable")


def test_unknown_backend_error_names_registry_and_suggests():
    with pytest.raises(UnknownBackendError) as exc_info:
        get_backend("nunpy")
    err = exc_info.value
    assert isinstance(err, ValueError)  # old except-clauses keep working
    assert err.backend == "nunpy"
    assert "numpy" in err.available and "dataflow" in err.available
    assert err.suggestion == "numpy"
    assert "did you mean 'numpy'?" in str(err)


def test_unknown_backend_without_near_miss_has_no_suggestion():
    with pytest.raises(UnknownBackendError) as exc_info:
        get_backend("fortran2008")
    assert exc_info.value.suggestion is None
    assert "did you mean" not in str(exc_info.value)


# ---------------------------------------------------------------------------
# registered backends drive stencil dispatch
# ---------------------------------------------------------------------------
def test_stencil_call_uses_registered_backend(recording_backend):
    a = np.ones((4, 4, 2))
    _double(a, np.zeros_like(a), backend="recording",
            origin=(0, 0, 0), domain=(4, 4, 2))
    assert recording_backend.calls == [("_double", (4, 4, 2))]


def test_stencil_call_with_unknown_backend_raises(recording_backend):
    a = np.ones((4, 4, 2))
    with pytest.raises(UnknownBackendError, match="recopding"):
        _double(a, np.zeros_like(a), backend="recopding",
                origin=(0, 0, 0), domain=(4, 4, 2))


def test_default_backend_drives_unpinned_stencils(recording_backend):
    a = np.ones((4, 4, 2))
    with default_backend("recording"):
        assert _double.backend == "recording"
        _double(a, np.zeros_like(a), origin=(0, 0, 0), domain=(4, 4, 2))
    assert recording_backend.calls
    assert _double.backend == current_default_backend() != "recording"


# ---------------------------------------------------------------------------
# default_backend getter / setter / context manager
# ---------------------------------------------------------------------------
def test_default_backend_getter_and_setter():
    before = default_backend()
    assert before == current_default_backend()
    guard = default_backend("dataflow")
    try:
        assert default_backend() == "dataflow"
    finally:
        with guard:  # __exit__ restores
            pass
    assert default_backend() == before


def test_default_backend_context_manager_nests_and_restores():
    before = default_backend()
    with default_backend("dataflow") as outer:
        assert outer == "dataflow"
        assert default_backend() == "dataflow"
        with default_backend("numpy"):
            assert default_backend() == "numpy"
        assert default_backend() == "dataflow"
    assert default_backend() == before


def test_default_backend_rejects_unknown_names():
    before = default_backend()
    with pytest.raises(UnknownBackendError):
        default_backend("dataflw")
    assert default_backend() == before  # unchanged on error


# ---------------------------------------------------------------------------
# deprecation shims
# ---------------------------------------------------------------------------
def test_module_global_default_backend_warns_but_works():
    with pytest.warns(DeprecationWarning, match="DEFAULT_BACKEND"):
        value = _STENCIL_MODULE.DEFAULT_BACKEND
    assert value == current_default_backend()


def test_stencil_module_has_no_valid_backends_tuple():
    assert not hasattr(type(_STENCIL_MODULE), "_VALID_BACKENDS")
    with pytest.raises(AttributeError):
        _STENCIL_MODULE._VALID_BACKENDS


def test_set_default_backend_warns_and_delegates():
    before = default_backend()
    try:
        with pytest.warns(DeprecationWarning, match="set_default_backend"):
            _STENCIL_MODULE.set_default_backend("dataflow")
        assert default_backend() == "dataflow"
    finally:
        default_backend(before)
