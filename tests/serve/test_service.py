"""End-to-end :class:`ForecastService` behaviour: admission, warm
drivers, the state cache, deadlines, cancellation, shutdown."""

import threading

import pytest

from repro.run import run
from repro.serve import (
    DeadlineExceeded,
    ForecastRequest,
    ForecastService,
    Overloaded,
    RequestCancelled,
    ServiceClosed,
    ServiceConfig,
)


@pytest.fixture
def service(small_config):
    svc = ForecastService(ServiceConfig(workers=2, batch_max=4))
    yield svc
    svc.close()


def _req(small_config, steps=2, **kw):
    kw.setdefault("deadline", 300.0)
    return ForecastRequest("baroclinic_wave", steps, config=small_config,
                           **kw)


def test_forecast_matches_direct_run_bit_identical(service, small_config):
    """The serving path is a transport, not a model change: its answer
    equals the classic ``repro.run`` facade's, summary for summary."""
    response = service.forecast("baroclinic_wave", 2, config=small_config,
                                seed=3, member=1, deadline=300.0)
    direct = run("baroclinic_wave", small_config, steps=2, members=(1,),
                 seed=3, check=False)
    assert response.report["summary"] == direct.members[0].summary
    assert response.report["mass_drift"] == direct.members[0].mass_drift
    assert response.step == 2
    assert response.cache == "miss"
    assert response.attempts == 1 and not response.degraded


def test_repeat_query_served_from_cache_with_zero_model_work(
        service, small_config):
    first = service.submit(_req(small_config)).result()
    assert first.cache == "miss" and first.steps_computed == 2
    again = service.submit(_req(small_config)).result()
    assert again.cache == "hit"
    assert again.steps_computed == 0
    assert again.report["summary"] == first.report["summary"]
    assert service.cache.stats()["hits"] == 1


def test_longer_lead_warm_starts_from_cached_step(service, small_config):
    service.submit(_req(small_config, steps=2)).result()
    deeper = service.submit(_req(small_config, steps=3)).result()
    assert deeper.cache == "warm"
    assert deeper.steps_computed == 1  # only the remainder
    direct = run("baroclinic_wave", small_config, steps=3, check=False)
    assert deeper.report["summary"] == direct.members[0].summary


def test_cache_bypass_recomputes(service, small_config):
    service.submit(_req(small_config)).result()
    bypass = service.submit(_req(small_config, use_cache=False)).result()
    assert bypass.cache == "bypass" and bypass.steps_computed == 2


def test_warm_driver_reused_across_requests(service, small_config):
    service.submit(_req(small_config, seed=1, use_cache=False)).result()
    service.submit(_req(small_config, seed=2, use_cache=False)).result()
    assert len(service._drivers) == 1  # one engine served both
    # and its slots were released after each request
    ((driver, _),) = service._drivers.values()
    assert driver.member_ids == ()


def test_admission_sheds_typed_overloaded_when_queue_full(small_config):
    svc = ForecastService(ServiceConfig(workers=1, max_queue=1,
                                        batch_max=1))
    try:
        tickets, shed = [], 0
        for seed in range(8):
            try:
                tickets.append(svc.submit(
                    _req(small_config, steps=1, seed=seed)
                ))
            except Overloaded as exc:
                shed += 1
                assert exc.max_queue == 1
                assert exc.queue_depth >= 1
        assert shed >= 1
        for t in tickets:
            t.result(timeout=300)
        summary = svc.summary()["requests"]
        assert summary["shed"] == shed
        assert summary["completed"] == len(tickets)
    finally:
        svc.close()


def test_inflight_budget_sheds(small_config):
    svc = ForecastService(ServiceConfig(workers=1, max_inflight=1))
    try:
        first = svc.submit(_req(small_config, steps=1))
        with pytest.raises(Overloaded):
            svc.submit(_req(small_config, steps=1, seed=1))
        first.result(timeout=300)
    finally:
        svc.close()


def test_deadline_exceeded_is_typed_and_phase_attributed(small_config):
    svc = ForecastService(ServiceConfig(workers=1))
    try:
        with pytest.raises(DeadlineExceeded) as exc_info:
            svc.forecast("baroclinic_wave", 500, config=small_config,
                         deadline=0.2)
        err = exc_info.value
        assert err.deadline == 0.2
        assert err.phase in ("queue", "warm", "steps")
        assert set(err.phases) <= {"queue", "warm", "steps"}
        assert svc.summary()["requests"]["deadline_exceeded"] == 1
        # the worker is NOT wedged: the next request still completes
        ok = svc.forecast("baroclinic_wave", 1, config=small_config,
                          deadline=300.0)
        assert ok.step == 1
    finally:
        svc.close()


def test_cancellation_before_execution(small_config):
    import dataclasses

    other = dataclasses.replace(small_config, dt_atmos=600.0)
    svc = ForecastService(ServiceConfig(workers=1))
    try:
        blocker = svc.submit(_req(small_config, steps=4, use_cache=False))
        # different config: never fused into the blocker's batch, so it
        # waits in the queue while the blocker runs
        victim = svc.submit(_req(other, steps=2))
        assert victim.cancel()
        with pytest.raises(RequestCancelled):
            victim.result(timeout=300)
        blocker.result(timeout=300)
        assert svc.summary()["requests"]["cancelled"] == 1
    finally:
        svc.close()


def test_cancel_after_completion_returns_false(service, small_config):
    ticket = service.submit(_req(small_config, steps=1))
    ticket.result(timeout=300)
    assert not ticket.cancel()
    assert ticket.result().step == 1  # result still readable


def test_close_rejects_new_requests_and_is_idempotent(small_config):
    svc = ForecastService(ServiceConfig(workers=1))
    svc.forecast("baroclinic_wave", 1, config=small_config)
    svc.close()
    svc.close()
    with pytest.raises(ServiceClosed):
        svc.submit(_req(small_config))


def test_concurrent_clients_all_complete(service, small_config):
    """Eight client threads, mixed seeds and leads — every request gets
    a typed outcome and completed ones are internally consistent."""
    results, errors = {}, {}

    def client(i):
        try:
            results[i] = service.submit(
                _req(small_config, steps=1 + i % 3, seed=i % 4,
                     member=i % 2)
            ).result(timeout=300)
        except Exception as exc:  # typed serving errors only
            errors[i] = exc

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == 8
    for i, response in results.items():
        assert response.step == 1 + i % 3
        assert response.member == i % 2
    # identical (seed, member, steps) queries agree exactly
    by_key = {}
    for i, response in results.items():
        key = (i % 4, i % 2, 1 + i % 3)
        by_key.setdefault(key, []).append(response.report["summary"])
    for summaries in by_key.values():
        assert all(s == summaries[0] for s in summaries)


def test_batched_requests_counted(service, small_config):
    tickets = [
        service.submit(_req(small_config, steps=1, seed=s,
                            use_cache=False))
        for s in range(4)
    ]
    for t in tickets:
        t.result(timeout=300)
    summary = service.summary()["requests"]
    # at least some of the queued-together requests were fused
    assert summary["completed"] == 4
    assert summary["batches"] >= 0  # counter exists; fusion is timing-dependent


def test_request_validates_steps():
    with pytest.raises(ValueError):
        ForecastRequest("baroclinic_wave", 0)
