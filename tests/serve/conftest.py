"""Serving-suite fixtures: clean chaos/resilience state around every
test (services inject faults and count recoveries), plus the small
dyncore config every service test runs with — serving semantics don't
depend on resolution, so the suite uses the cheapest grid that still
exercises remapping and tracers."""

import pytest

from repro import resilience
from repro.fv3.config import DynamicalCoreConfig
from repro.resilience import chaos


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    previous = chaos.set_plan(None)
    resilience.reset()
    try:
        yield
    finally:
        chaos.set_plan(previous)
        resilience.reset()


@pytest.fixture
def small_config():
    return DynamicalCoreConfig(
        npx=12, npz=4, layout=1, dt_atmos=300.0, k_split=1, n_split=2,
        n_tracers=1,
    )
