"""The checkpoint-warmed state cache: lookups, LRU bounds, stats."""

import numpy as np

from repro.resilience import Snapshot
from repro.serve import CacheEntry, StateCache


def snap(step, cells=8):
    arrays = [{"u": np.full((cells,), float(step))}]
    tracers = [[np.zeros((cells,))]]
    return Snapshot(arrays=arrays, tracers=tracers, time=60.0 * step,
                    step=step)


def entry(step, cells=8):
    return CacheEntry(snap(step, cells), mass0=1.0, tracer0=None,
                      report={"step": step})


SERIES = ("wave", None, 0, 0)
OTHER = ("wave", None, 1, 0)


def test_exact_hit_and_miss_counting():
    cache = StateCache(max_entries=4)
    cache.put(SERIES, 3, entry(3))
    assert cache.exact(SERIES, 3).report == {"step": 3}
    assert cache.exact(SERIES, 4) is None
    assert cache.exact(OTHER, 3) is None  # other seed: different series
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 2
    assert stats["hit_ratio"] == 1 / 3


def test_best_at_or_below_picks_deepest_usable_step():
    cache = StateCache(max_entries=8)
    for step in (2, 5, 9):
        cache.put(SERIES, step, entry(step))
    cache.put(OTHER, 7, entry(7))
    found, step = cache.best_at_or_below(SERIES, 8)
    assert step == 5 and found.report == {"step": 5}
    found, step = cache.best_at_or_below(SERIES, 1)
    assert found is None and step == 0
    assert cache.stats()["warm_hits"] == 1


def test_lru_eviction_by_entry_count():
    cache = StateCache(max_entries=2)
    cache.put(SERIES, 1, entry(1))
    cache.put(SERIES, 2, entry(2))
    assert cache.exact(SERIES, 1) is not None  # refresh 1: now 2 is LRU
    cache.put(SERIES, 3, entry(3))
    assert len(cache) == 2
    assert cache.exact(SERIES, 2) is None
    assert cache.exact(SERIES, 1) is not None
    assert cache.stats()["evictions"] == 1


def test_byte_budget_evicts_oldest():
    one = entry(1, cells=1000)
    budget = int(one.nbytes * 2.5)  # room for two entries, not three
    cache = StateCache(max_entries=100, max_bytes=budget)
    for step in (1, 2, 3):
        cache.put(SERIES, step, entry(step, cells=1000))
    assert len(cache) == 2
    assert cache.exact(SERIES, 1) is None
    assert cache.stats()["bytes"] <= budget


def test_put_replaces_existing_step_without_growth():
    cache = StateCache(max_entries=4)
    cache.put(SERIES, 3, entry(3))
    fresh = entry(3)
    fresh.report["marker"] = True
    cache.put(SERIES, 3, fresh)
    assert len(cache) == 1
    assert cache.exact(SERIES, 3).report["marker"] is True


def test_zero_entries_disables_caching():
    cache = StateCache(max_entries=0)
    cache.put(SERIES, 1, entry(1))
    assert len(cache) == 0


def test_clear_drops_entries_and_bytes():
    cache = StateCache(max_entries=4)
    cache.put(SERIES, 1, entry(1))
    cache.clear()
    assert len(cache) == 0 and cache.stats()["bytes"] == 0
