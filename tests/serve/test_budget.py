"""Deadline budgets and the retry schedule, on a fake clock."""

import pytest

from repro.serve import DeadlineBudget, DeadlineExceeded, RetryPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_budget_tracks_elapsed_and_remaining():
    clock = FakeClock()
    budget = DeadlineBudget(10.0, request_id=7, clock=clock)
    assert budget.remaining() == pytest.approx(10.0)
    clock.advance(4.0)
    assert budget.elapsed() == pytest.approx(4.0)
    assert budget.remaining() == pytest.approx(6.0)
    assert not budget.exhausted
    assert budget.check() == pytest.approx(6.0)


def test_budget_check_raises_typed_error_with_phase_breakdown():
    clock = FakeClock()
    budget = DeadlineBudget(5.0, request_id=3, clock=clock)
    with budget.phase("warm"):
        clock.advance(2.0)
    with pytest.raises(DeadlineExceeded) as exc_info:
        with budget.phase("steps"):
            clock.advance(4.0)
            budget.check()
    err = exc_info.value
    assert err.request_id == 3
    assert err.phase == "steps"
    assert err.phases["warm"] == pytest.approx(2.0)
    assert err.phases["steps"] == pytest.approx(4.0)
    assert "steps" in str(err) and "5.000s" in str(err)


def test_budget_phases_accumulate_and_charge_attributes_external_time():
    clock = FakeClock()
    budget = DeadlineBudget(None, clock=clock)
    budget.charge("queue", 1.5)
    for _ in range(3):
        with budget.phase("steps"):
            clock.advance(0.5)
    assert budget.phases["queue"] == pytest.approx(1.5)
    assert budget.phases["steps"] == pytest.approx(1.5)
    # None deadline never trips, however much time passes
    clock.advance(1e9)
    assert budget.check() == float("inf")
    assert not budget.exhausted


def test_budget_rejects_nonpositive_deadline():
    with pytest.raises(ValueError, match="positive"):
        DeadlineBudget(0.0)
    with pytest.raises(ValueError, match="positive"):
        DeadlineBudget(-1.0)


def test_retry_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(max_retries=5, backoff_base=0.1,
                         max_backoff=0.3, seed=42)
    delays = [policy.backoff(11, k) for k in (1, 2, 3, 4)]
    again = [policy.backoff(11, k) for k in (1, 2, 3, 4)]
    assert delays == again  # pure function of (seed, request, attempt)
    assert delays != [RetryPolicy(seed=43, backoff_base=0.1).backoff(11, k)
                      for k in (1, 2, 3, 4)]
    for k, d in enumerate(delays, start=1):
        assert 0.0 <= d <= min(0.1 * 2 ** (k - 1), 0.3)


def test_retry_backoff_zero_base_never_sleeps():
    policy = RetryPolicy(max_retries=2, backoff_base=0.0)
    slept = []
    took = policy.sleep(1, 1, sleeper=slept.append)
    assert took == 0.0 and slept == []


def test_retry_sleep_clipped_to_remaining_budget():
    clock = FakeClock()
    budget = DeadlineBudget(10.0, clock=clock)
    clock.advance(9.9)  # 0.1s left
    policy = RetryPolicy(max_retries=1, backoff_base=100.0,
                         max_backoff=100.0, seed=0)
    slept = []
    took = policy.sleep(5, 1, budget, sleeper=slept.append)
    assert took <= 0.05  # at most half the remaining budget
    assert slept == [took] or took == 0.0


def test_retry_policy_rejects_negative_retries():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
