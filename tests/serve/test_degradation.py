"""Graceful degradation: a failing primary backend trips its breaker
and traffic routes to the bit-identical NumPy fallback; half-open
probes restore the primary when it heals.

The DSL's own per-stencil fallback (``REPRO_FALLBACK``) is disabled
here so backend failures actually escape to the serving layer — with it
on, a broken backend costs every stencil call a failed attempt plus a
NumPy re-run, which is exactly the per-call tax the breaker exists to
stop paying."""

import pytest

from repro.dsl import backends
from repro.resilience import RecoverableFault
from repro.run import run
from repro.serve import ForecastService, ServiceConfig


#: module-level so every flaky executor — including ones cached on
#: long-lived stencil objects by an earlier test — sees the same knobs
_FLAKY_STATE = {"healthy": False, "calls": 0}


@pytest.fixture
def flaky_backend(monkeypatch):
    """A registered backend whose executors fail on demand."""
    monkeypatch.setenv("REPRO_FALLBACK", "0")
    _FLAKY_STATE.update(healthy=False, calls=0)

    def factory(stencil):
        numpy_exec = backends.get_backend("numpy")(stencil)

        def executor(*args, **kwargs):
            _FLAKY_STATE["calls"] += 1
            if not _FLAKY_STATE["healthy"]:
                raise RecoverableFault("flaky backend: injected failure")
            numpy_exec(*args, **kwargs)

        return executor

    backends.register_backend("flaky", factory, replace=True)
    yield _FLAKY_STATE
    backends.unregister_backend("flaky")


def make_service(**overrides):
    kw = dict(workers=1, backend="flaky", max_retries=2,
              breaker_threshold=2, breaker_cooldown=3600.0)
    kw.update(overrides)
    return ForecastService(ServiceConfig(**kw))


def test_breaker_trips_and_routes_to_fallback(flaky_backend, small_config):
    svc = make_service()
    try:
        response = svc.forecast("baroclinic_wave", 1, config=small_config,
                                deadline=300.0, use_cache=False)
        # the failed primary attempts tripped the breaker mid-request;
        # the surviving attempt ran degraded on the fallback
        assert response.degraded
        assert response.backend == "numpy"
        assert response.attempts == 3  # 2 primary failures + 1 fallback
        board = svc.breakers.stats()["baroclinic_wave/flaky"]
        assert board["state"] == "open"
        assert board["trips"] == 1
        # the next request degrades immediately: no failed attempt paid
        calls_before = flaky_backend["calls"]
        again = svc.forecast("baroclinic_wave", 1, config=small_config,
                             seed=5, deadline=300.0, use_cache=False)
        assert again.degraded and again.attempts == 1
        assert flaky_backend["calls"] == calls_before  # primary untouched
        assert svc.summary()["requests"]["degraded"] == 2
    finally:
        svc.close()


def test_degraded_result_bit_identical_to_numpy_direct(
        flaky_backend, small_config):
    svc = make_service()
    try:
        degraded = svc.forecast("baroclinic_wave", 2, config=small_config,
                                seed=3, deadline=300.0, use_cache=False)
        assert degraded.degraded
    finally:
        svc.close()
    direct = run("baroclinic_wave", small_config, steps=2, seed=3,
                 check=False)
    assert degraded.report["summary"] == direct.members[0].summary
    assert degraded.report["mass_drift"] == direct.members[0].mass_drift


def test_half_open_probe_recovers_healed_primary(flaky_backend,
                                                 small_config):
    clock = FakeClock()
    svc = ForecastService(
        ServiceConfig(workers=1, backend="flaky", max_retries=2,
                      breaker_threshold=2, breaker_cooldown=10.0),
        clock=clock,
    )
    try:
        svc.forecast("baroclinic_wave", 1, config=small_config,
                     deadline=None, use_cache=False)
        breaker = svc.breakers.get("baroclinic_wave", "flaky")
        assert breaker.state == "open"
        # primary heals; after the cooldown the next request probes it
        flaky_backend["healthy"] = True
        clock.advance(11.0)
        probe = svc.forecast("baroclinic_wave", 1, config=small_config,
                             seed=7, deadline=None, use_cache=False)
        assert not probe.degraded
        assert probe.backend == "flaky"
        assert breaker.state == "closed"
        assert breaker.stats()["recoveries"] == 1
    finally:
        svc.close()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
