"""The SLO holds under seeded chaos: every request completes within its
deadline, nothing is lost, and the answers are bit-identical to a
fault-free run — the serving layer composes admission, engine-level
rollback and service-level retry into an envelope the chaos plan cannot
pierce."""

import pytest

from repro import resilience
from repro.resilience import chaos
from repro.serve import ForecastRequest, ForecastService, ServiceConfig

#: five seeded faults across three sites, hitting the early stencil /
#: pool / halo traffic of the run
CHAOS_SPEC = "seed=7;stencil.nanflip@5,60;pool.poison@3;halo.corrupt@2,9"


def _requests(small_config):
    return [
        ForecastRequest("baroclinic_wave", steps=1 + i % 2,
                        config=small_config, seed=i % 3, deadline=300.0,
                        use_cache=False)
        for i in range(6)
    ]


def test_seeded_chaos_stays_within_slo(small_config):
    chaos.set_plan(chaos.ChaosPlan.from_spec(CHAOS_SPEC))
    svc = ForecastService(ServiceConfig(workers=2, max_retries=3))
    try:
        tickets = [svc.submit(r) for r in _requests(small_config)]
        responses = [t.result(timeout=300) for t in tickets]  # zero lost
    finally:
        svc.close()
    plan = chaos.get_plan()
    assert len(plan.injected) >= 3  # the plan really fired
    counters = resilience.summary()["counters"]
    recovered = (
        counters["rollbacks"] + counters["retries"]
        + counters["halo_redeliveries"] + counters["fallbacks"]
    )
    assert recovered >= 1  # recovery work actually happened
    summary = svc.summary()["requests"]
    assert summary["completed"] == 6
    assert summary["deadline_exceeded"] == 0
    assert summary["failed"] == 0
    for response in responses:
        # a served forecast never carries a NaN a guard should have
        # caught
        for value in response.report["summary"].values():
            assert value == value


def test_chaos_recovered_answers_are_bit_identical_to_clean(small_config):
    def serve_one():
        svc = ForecastService(ServiceConfig(workers=1, max_retries=3))
        try:
            return svc.forecast(
                "baroclinic_wave", 2, config=small_config,
                deadline=300.0, use_cache=False,
            )
        finally:
            svc.close()

    clean = serve_one()
    chaos.set_plan(chaos.ChaosPlan.from_spec("seed=7;stencil.nanflip@5"))
    faulty = serve_one()
    chaos.clear_plan()
    assert faulty.report["summary"] == clean.report["summary"]
    assert faulty.report["mass_drift"] == clean.report["mass_drift"]
    counters = resilience.summary()["counters"]
    assert counters["guard_trips"] >= 1
    assert counters["rollbacks"] >= 1


def test_unrecoverable_chaos_fails_typed_not_wedged(small_config):
    """A fault rate high enough to exhaust both retry budgets must
    surface as a typed failure — and the worker must survive it."""
    from repro.serve import RequestFailed

    chaos.set_plan(chaos.ChaosPlan.from_spec(
        "seed=1;stencil.nanflip:p=1.0"
    ))
    svc = ForecastService(ServiceConfig(workers=1, max_retries=1))
    try:
        with pytest.raises(RequestFailed) as exc_info:
            svc.forecast("baroclinic_wave", 1, config=small_config,
                         deadline=300.0)
        assert exc_info.value.attempts == 2
        chaos.clear_plan()
        ok = svc.forecast("baroclinic_wave", 1, config=small_config,
                          deadline=300.0)
        assert ok.step == 1  # the worker lived on
    finally:
        svc.close()
    assert svc.summary()["requests"]["failed"] == 1
    assert svc.summary()["requests"]["retries"] == 1
