"""The (scenario, backend) circuit breaker state machine, on a fake
clock so cooldowns need no sleeping."""

from repro.serve import BreakerBoard, CircuitBreaker
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make(threshold=3, cooldown=10.0):
    clock = FakeClock()
    return CircuitBreaker(threshold, cooldown, clock), clock


def test_starts_closed_and_allows_primary():
    breaker, _ = make()
    assert breaker.state == CLOSED
    assert breaker.allow_primary()


def test_trips_after_threshold_consecutive_failures():
    breaker, _ = make(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow_primary()
    assert breaker.stats()["trips"] == 1


def test_success_resets_the_consecutive_count():
    breaker, _ = make(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never two in a row


def test_half_open_after_cooldown_allows_exactly_one_probe():
    breaker, clock = make(threshold=1, cooldown=10.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(9.9)
    assert not breaker.allow_primary()
    clock.advance(0.2)
    assert breaker.state == HALF_OPEN
    assert breaker.allow_primary()       # the probe
    assert not breaker.allow_primary()   # everyone else keeps degrading
    assert breaker.stats()["probes"] == 1


def test_successful_probe_closes_and_counts_recovery():
    breaker, clock = make(threshold=1, cooldown=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow_primary()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow_primary()
    assert breaker.stats()["recoveries"] == 1


def test_failed_probe_reopens_and_restarts_cooldown():
    breaker, clock = make(threshold=1, cooldown=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow_primary()
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(4.9)
    assert not breaker.allow_primary()  # cooldown restarted
    clock.advance(0.2)
    assert breaker.allow_primary()


def test_board_keys_by_scenario_and_backend():
    board = BreakerBoard(threshold=1, cooldown=100.0, clock=FakeClock())
    board.get("wave", "compiled").record_failure()
    assert board.get("wave", "compiled").state == OPEN
    # other scenarios / backends are unaffected
    assert board.get("wave", "numpy").state == CLOSED
    assert board.get("vortex", "compiled").state == CLOSED
    assert board.get("wave", "compiled") is board.get("wave", "compiled")
    totals = board.totals()
    assert totals["trips"] == 1 and totals["open"] == 1
    assert "wave/compiled" in board.stats()
