"""Regression guard: with resilience disabled the hot path is untouched —
no extra pool allocations in steady state, no counter movement, and no
chaos consults on any call site."""

import numpy as np
import pytest

from repro import resilience
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.resilience import chaos
from repro.runtime.pool import get_pool

CFG = DynamicalCoreConfig(
    npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=1,
    n_tracers=1,
)


def test_disabled_resilience_is_invisible():
    """No plan, no ResilienceConfig ⇒ the fault-injection sites, guard
    hooks and retry machinery leave no trace at all."""
    assert chaos.get_plan() is None
    core = DynamicalCore(CFG)
    core.step_dynamics()
    assert core._guard is None
    counters = resilience.summary()["counters"]
    assert not any(counters.values()), counters


def test_steady_state_step_allocates_nothing_extra():
    """After warm-up, a dyncore step with resilience disabled performs
    zero new pool allocations — same budget as the seed."""
    core = DynamicalCore(CFG)
    core.step_dynamics()  # warm-up: seeds halo scratch in the pool
    pool = get_pool()
    before = pool.stats()
    for _ in range(2):
        core.step_dynamics()
    after = pool.stats()
    assert after["allocations"] == before["allocations"]
    assert after["allocated_bytes"] == before["allocated_bytes"]


def test_guarded_and_unguarded_runs_bit_identical():
    """Wiring a guard (without any faults) must not perturb the model:
    the guard scans are read-only and the retry loop never engages."""
    from repro.resilience import GuardConfig, ResilienceConfig

    plain = DynamicalCore(CFG)
    guarded = DynamicalCore(
        CFG,
        resilience=ResilienceConfig(guard=GuardConfig(policy="rollback")),
    )
    for _ in range(2):
        plain.step_dynamics()
        guarded.step_dynamics()
    for sa, sb in zip(plain.states, guarded.states):
        for f in ("u", "v", "w", "pt", "delp", "delz"):
            np.testing.assert_array_equal(getattr(sa, f), getattr(sb, f))
    assert resilience.summary()["counters"]["rollbacks"] == 0


def test_no_chaos_consults_without_plan():
    """Call sites guard with a single attribute load: with no plan
    installed, nothing is counted anywhere."""
    core = DynamicalCore(CFG)
    core.step_dynamics()
    assert chaos.get_plan() is None  # still none — nothing installed one


def test_bench_baseline_recorded():
    """BENCH_PR3.json (the zero-allocation smoke baseline) must still be
    present and structurally intact so benchmarks/chaos_smoke.py can
    compare against it."""
    import json
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_PR3.json"
    if not path.exists():
        pytest.skip("no recorded baseline in this checkout")
    data = json.loads(path.read_text())
    assert data["fvtp2d"]["median_ms"] > 0
    assert data["fvtp2d"]["runtime"]["pool"]["allocations"] >= 0
