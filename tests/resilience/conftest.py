"""Resilience-suite fixtures: every test runs with a clean chaos plan
and zeroed recovery counters, and restores whatever was active before
(so a ``REPRO_CHAOS=… python -m pytest`` run keeps its plan outside this
directory)."""

import pytest

from repro import resilience
from repro.resilience import chaos


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    previous = chaos.set_plan(None)
    resilience.reset()
    try:
        yield
    finally:
        chaos.set_plan(previous)
        resilience.reset()
