"""Edge cases of the ``REPRO_CHAOS`` spec grammar beyond the happy
path: whitespace and empty-clause tolerance, seed clause malformations,
probability boundary values, and the typed :class:`ChaosSpecError`
contract (never a bare ``ValueError`` escaping the parser)."""

import pytest

from repro.resilience import ChaosPlan, ChaosSpecError


# ---------------------------------------------------------------------------
# tolerated sloppiness
# ---------------------------------------------------------------------------

def test_whitespace_and_empty_clauses_tolerated():
    plan = ChaosPlan.from_spec("  seed=7 ;  halo.drop@2 ; ; pool.poison:p=0.5 ;")
    assert plan.seed == 7
    assert set(plan.rules) == {"halo.drop", "pool.poison"}
    assert plan.rules["halo.drop"].at == (2,)


def test_occurrence_list_order_is_normalized():
    plan = ChaosPlan.from_spec("halo.drop@9,2,5")
    assert plan.rules["halo.drop"].at == (2, 5, 9)


def test_probability_boundaries_accepted():
    lo = ChaosPlan.from_spec("halo.drop:p=0.0")
    hi = ChaosPlan.from_spec("halo.drop:p=1.0")
    assert lo.rules["halo.drop"].p == 0.0
    assert hi.rules["halo.drop"].p == 1.0


def test_last_seed_clause_wins():
    plan = ChaosPlan.from_spec("seed=1;seed=9;halo.drop@1")
    assert plan.seed == 9


# ---------------------------------------------------------------------------
# rejected malformations — always the typed error
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "bad",
    [
        "seed=;halo.drop@1",          # empty seed value
        "seed=abc;halo.drop@1",       # non-integer seed
        "seed=1.5;halo.drop@1",       # float seed
        "halo.drop@",                 # empty occurrence spec
        "halo.drop@1,",               # trailing comma → empty token
        "halo.drop@-3",               # negative occurrence
        "halo.drop@1+2+3",            # doubled period separator
        "halo.drop@2+-1",             # negative period
        "halo.drop:p=",               # empty probability
        "halo.drop:p=-0.1",           # below range
        "halo.drop:p=1e309",          # overflows to inf → out of range
        "halo.drop:p=nan",            # nan never satisfies 0<=p<=1
        "halo.drop:prob=0.5",         # wrong key
        ";;;",                        # clauses but no rules
        "@3",                         # rule with no site name
    ],
)
def test_malformed_specs_raise_typed_error(bad):
    with pytest.raises(ChaosSpecError):
        ChaosPlan.from_spec(bad)


def test_spec_error_is_a_value_error_subclass_or_not_leaky():
    """Whatever the hierarchy, callers catching ChaosSpecError see every
    parse failure — no bare ValueError escapes ``from_spec``."""
    for bad in ("halo.drop@x", "halo.drop:p=oops", "seed=z;halo.drop@1"):
        try:
            ChaosPlan.from_spec(bad)
        except ChaosSpecError:
            pass
        else:  # pragma: no cover - defends the test's premise
            pytest.fail(f"{bad!r} unexpectedly parsed")


def test_replay_spec_pins_fired_occurrences_and_reparses():
    """``replay_spec`` renders what actually fired — feeding it back
    through the parser yields a plan pinned to those occurrences."""
    plan = ChaosPlan.from_spec("seed=31;halo.corrupt@2,9;pool.poison@4+6")
    for _ in range(10):
        plan.consult("halo.corrupt")
        plan.consult("pool.poison")
    again = ChaosPlan.from_spec(plan.replay_spec())
    assert again.seed == 31
    assert again.rules["halo.corrupt"].at == (2, 9)
    assert again.rules["pool.poison"].at == (4, 10)
