"""Chaos-smoke on the compiled backend: an injected ``stencil.nanflip``
is caught by the state guards and rolled back exactly as on the default
backend, and the recovered run is bit-identical to a fault-free run —
the JITted loop nests compose with the PR-4 resilience machinery."""

import numpy as np
import pytest

from repro import resilience
from repro.dsl import default_backend
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.resilience import GuardConfig, ResilienceConfig, chaos
from repro.resilience.chaos import ChaosPlan
from repro.runtime import jit

pytestmark = pytest.mark.skipif(
    not jit.available(),
    reason="compiled backend: no JIT engine (numba not installed and no "
    "C compiler found)",
)

CFG = DynamicalCoreConfig(
    npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
    n_tracers=1,
)
ROLLBACK = ResilienceConfig(
    guard=GuardConfig(policy="rollback"), max_retries=4
)
FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _run(backend, plan=None, res=None, steps=2):
    chaos.set_plan(plan)
    with default_backend(backend):
        core = DynamicalCore(CFG, resilience=res)
        for _ in range(steps):
            core.step_dynamics()
    chaos.set_plan(None)
    return core


def _assert_bit_identical(a, b):
    for r, (sa, sb) in enumerate(zip(a.states, b.states)):
        for f in FIELDS:
            np.testing.assert_array_equal(
                getattr(sa, f), getattr(sb, f), err_msg=f"rank {r} {f}"
            )


def test_nanflip_rollback_recovers_bit_identical_on_compiled():
    clean = _run("compiled")
    plan = ChaosPlan.from_spec("seed=7;stencil.nanflip@5")
    faulty = _run("compiled", plan, ROLLBACK)
    assert plan.counts() == {"stencil.nanflip": 1}
    counters = resilience.summary()["counters"]
    assert counters["guard_trips"] >= 1
    assert counters["rollbacks"] >= 1
    _assert_bit_identical(clean, faulty)


def test_compiled_recovery_matches_default_backend():
    """The recovered compiled-backend state equals the recovered
    default-backend state — recovery does not depend on the backend."""
    plan_spec = "seed=7;stencil.nanflip@5"
    a = _run("compiled", ChaosPlan.from_spec(plan_spec), ROLLBACK)
    resilience.reset()
    b = _run(default_backend(), ChaosPlan.from_spec(plan_spec), ROLLBACK)
    _assert_bit_identical(a, b)
