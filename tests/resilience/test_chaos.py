"""Chaos plan: spec grammar, deterministic firing, exact replay."""

import pytest

from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan, ChaosRule
from repro.resilience.errors import ChaosSpecError


# ---------------------------------------------------------------------------
# spec grammar
# ---------------------------------------------------------------------------

def test_spec_occurrences():
    plan = ChaosPlan.from_spec("seed=42;halo.drop@3;pool.poison@2,5")
    assert plan.seed == 42
    assert plan.rules["halo.drop"] == ChaosRule(at=(3,))
    assert plan.rules["pool.poison"] == ChaosRule(at=(2, 5))


def test_spec_periodic_and_probabilistic():
    plan = ChaosPlan.from_spec("compile.fail@4+10;stencil.nanflip:p=0.25")
    assert plan.rules["compile.fail"] == ChaosRule(start=4, period=10)
    assert plan.rules["stencil.nanflip"] == ChaosRule(p=0.25)


@pytest.mark.parametrize(
    "bad",
    [
        "halo.drop@0",            # occurrences are 1-based
        "halo.drop@x",
        "halo.drop@3+0",
        "halo.drop:p=1.5",
        "halo.drop:q=1",
        "just-a-word",
        "halo.drop@1;halo.drop@2",  # duplicate site
        "seed=12",                  # no site rules at all
        "",
    ],
)
def test_spec_rejects(bad):
    with pytest.raises(ChaosSpecError):
        ChaosPlan.from_spec(bad)


def test_unknown_site_warns():
    with pytest.warns(UserWarning, match="unknown site"):
        ChaosPlan.from_spec("halo.dorp@1")


# ---------------------------------------------------------------------------
# firing and records
# ---------------------------------------------------------------------------

def test_occurrence_rule_fires_exactly_once():
    plan = ChaosPlan.from_spec("seed=1;halo.drop@3")
    fired = [bool(plan.consult("halo.drop")) for _ in range(10)]
    assert fired == [False, False, True] + [False] * 7
    (fault,) = plan.injected
    assert (fault.site, fault.occurrence) == ("halo.drop", 3)


def test_periodic_rule():
    plan = ChaosPlan.from_spec("pool.poison@2+3")
    fired = [bool(plan.consult("pool.poison")) for _ in range(9)]
    assert fired == [False, True, False, False, True, False, False, True,
                     False]


def test_consult_records_step_and_detail():
    plan = ChaosPlan.from_spec("halo.corrupt@1")
    chaos.set_plan(plan)
    chaos.set_step(7)
    fault = chaos.consult("halo.corrupt", source=1, dest=2, tag=9)
    assert fault is not None
    assert fault.step == 7
    assert fault.detail == {"source": 1, "dest": 2, "tag": 9}
    fault.detail["index"] = 13  # call sites may enrich the record
    assert plan.trace()[0]["detail"]["index"] == 13


def test_unruled_site_never_fires_but_is_counted():
    plan = ChaosPlan.from_spec("halo.drop@1")
    for _ in range(5):
        assert plan.consult("pool.poison") is None
    assert plan.consults("pool.poison") == 5
    assert plan.counts() == {}


# ---------------------------------------------------------------------------
# determinism and replay
# ---------------------------------------------------------------------------

def _drive(plan, n=200):
    """A fixed consult pattern over two sites."""
    fired = []
    for i in range(n):
        site = "halo.drop" if i % 3 else "stencil.nanflip"
        if plan.consult(site):
            fired.append((site, plan.consults(site)))
    return fired


def test_probabilistic_rule_is_seed_deterministic():
    spec = "seed=1234;halo.drop:p=0.1;stencil.nanflip:p=0.2"
    a = _drive(ChaosPlan.from_spec(spec))
    b = _drive(ChaosPlan.from_spec(spec))
    assert a and a == b
    c = _drive(ChaosPlan.from_spec(spec.replace("1234", "99")))
    assert a != c


def test_replay_spec_pins_probabilistic_run():
    plan = ChaosPlan.from_spec("seed=7;halo.drop:p=0.15")
    fired = _drive(plan)
    replay = ChaosPlan.from_spec(plan.replay_spec())
    assert _drive(replay) == fired
    assert replay.counts() == plan.counts()


def test_module_level_plan_management():
    assert not chaos.active()
    assert chaos.consult("halo.drop") is None  # no plan: never fires
    plan = ChaosPlan.from_spec("halo.drop@1")
    previous = chaos.set_plan(plan)
    assert previous is None
    assert chaos.active() and chaos.get_plan() is plan
    assert chaos.consult("halo.drop")
    chaos.clear_plan()
    assert not chaos.active()


def test_env_spec_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "seed=5;halo.drop@2")
    saved = chaos.get_plan()
    try:
        chaos._init_from_env()
        plan = chaos.get_plan()
        assert plan.seed == 5 and "halo.drop" in plan.rules
    finally:
        chaos.set_plan(saved)
