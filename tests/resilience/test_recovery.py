"""End-to-end recovery: a seeded chaos run finishes bit-identical to a
fault-free run, with the recovery path visible in counters and in the
obs report, and replays exactly from the recorded seed."""

import numpy as np
import pytest

from repro import resilience
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.resilience import GuardConfig, ResilienceConfig, chaos
from repro.resilience.chaos import ChaosPlan
from repro.resilience.errors import (
    GuardError,
    GuardWarning,
    RetriesExhaustedError,
)

CFG = DynamicalCoreConfig(
    npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
    n_tracers=1,
)

#: drops one halo message, corrupts another, poisons one pool buffer and
#: flips one NaN into a stencil output — all within a two-step run
CHAOS_SPEC = (
    "seed=7;halo.drop@40;halo.corrupt@11;pool.poison@3;stencil.nanflip@5"
)

ROLLBACK = ResilienceConfig(
    guard=GuardConfig(policy="rollback"), max_retries=4
)

FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _run(plan=None, res=None, steps=2):
    chaos.set_plan(plan)
    core = DynamicalCore(CFG, resilience=res)
    for _ in range(steps):
        core.step_dynamics()
    chaos.set_plan(None)
    return core


def _assert_bit_identical(a, b):
    for r, (sa, sb) in enumerate(zip(a.states, b.states)):
        for f in FIELDS:
            np.testing.assert_array_equal(
                getattr(sa, f), getattr(sb, f), err_msg=f"rank {r} {f}"
            )
        for t, (ta, tb) in enumerate(zip(sa.tracers, sb.tracers)):
            np.testing.assert_array_equal(ta, tb, err_msg=f"tracer {t}")


@pytest.fixture(scope="module")
def clean_run():
    return _run()


def test_chaos_run_recovers_bit_identical(clean_run):
    plan = ChaosPlan.from_spec(CHAOS_SPEC)
    faulty = _run(plan, ROLLBACK)
    # every planned fault actually fired …
    assert plan.counts() == {
        "halo.drop": 1,
        "halo.corrupt": 1,
        "pool.poison": 1,
        "stencil.nanflip": 1,
    }
    # … the recovery path is visible …
    counters = resilience.summary()["counters"]
    assert counters["rollbacks"] >= 2  # drop timeout + guard trips
    assert counters["retries"] == counters["rollbacks"]
    assert counters["halo_timeouts"] == 1
    assert counters["guard_trips"] >= 1
    # … and the result is bit-identical to the fault-free run (the
    # poison was absorbed by the overwrite discipline, everything else
    # was rolled back and re-advanced)
    _assert_bit_identical(clean_run, faulty)


def test_chaos_replay_is_deterministic(clean_run):
    plan_a = ChaosPlan.from_spec(CHAOS_SPEC)
    run_a = _run(plan_a, ROLLBACK)
    trace_a = plan_a.trace()
    counters_a = dict(resilience.summary()["counters"])

    resilience.reset()
    plan_b = ChaosPlan.from_spec(plan_a.replay_spec())
    run_b = _run(plan_b, ROLLBACK)
    # same seed ⇒ same injected fault sequence ⇒ same recovery trace
    assert plan_b.trace() == trace_a
    assert dict(resilience.summary()["counters"]) == counters_a
    _assert_bit_identical(run_a, run_b)


def test_recovery_shows_in_obs_report(clean_run):
    import repro.obs as obs

    plan = ChaosPlan.from_spec("seed=7;stencil.nanflip@5")
    obs.enable()
    try:
        _run(plan, ROLLBACK, steps=1)
        # _run cleared the active plan; reinstate it so the report can
        # attribute the injected faults
        chaos.set_plan(plan)
        text = obs.report()
        assert "chaos: 1 fault(s) injected" in text
        assert "stencil.nanflip=1" in text
        assert "1 rollbacks" in text and "1 guard_trips" in text
        payload = obs.to_json()
        assert '"rollbacks": 1' in payload
    finally:
        obs.disable()
        obs.reset()
        chaos.set_plan(None)


def test_retry_budget_exhaustion():
    """A fault that refires on every attempt exhausts the budget."""
    plan = ChaosPlan.from_spec("seed=1;stencil.nanflip@1+1")  # every call
    chaos.set_plan(plan)
    res = ResilienceConfig(
        guard=GuardConfig(policy="rollback"), max_retries=2
    )
    core = DynamicalCore(CFG, resilience=res)
    with pytest.raises(RetriesExhaustedError, match="2 rollback"):
        core.step_dynamics()
    assert resilience.summary()["counters"]["retries"] == 3  # 1 + 2 retries


def test_guard_policy_raise_fails_fast():
    plan = ChaosPlan.from_spec("seed=7;stencil.nanflip@5")
    chaos.set_plan(plan)
    res = ResilienceConfig(guard=GuardConfig(policy="raise"))
    core = DynamicalCore(CFG, resilience=res)
    with pytest.raises(GuardError, match="non-finite"):
        core.step_dynamics()
    assert resilience.summary()["counters"]["rollbacks"] == 0


def test_guard_policy_warn_continues():
    plan = ChaosPlan.from_spec("seed=7;stencil.nanflip@5")
    chaos.set_plan(plan)
    res = ResilienceConfig(guard=GuardConfig(policy="warn"))
    core = DynamicalCore(CFG, resilience=res)
    with pytest.warns(GuardWarning, match="non-finite"):
        core.step_dynamics()
    assert core.step_count == 1
    assert resilience.summary()["counters"]["guard_trips"] == 1
    assert resilience.summary()["counters"]["rollbacks"] == 0
