"""Communicator fault semantics: drop/delay/corrupt, timeout errors,
orphan reporting, and halo-updater integration."""

import numpy as np
import pytest

from repro import resilience
from repro.fv3.communicator import LocalComm
from repro.fv3.halo import HaloUpdater
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan
from repro.resilience.errors import (
    HaloTimeoutError,
    OrphanedMessagesWarning,
)


def _counters():
    return resilience.summary()["counters"]


# ---------------------------------------------------------------------------
# LocalComm-level faults
# ---------------------------------------------------------------------------

def test_dropped_message_times_out_with_rich_error():
    chaos.set_plan(ChaosPlan.from_spec("halo.drop@1"))
    comm = LocalComm(4)
    comm.Isend(np.ones(3), source=2, dest=0, tag=5)  # dropped
    req = comm.Irecv(np.zeros(3), source=2, dest=0, tag=5)
    with pytest.raises(HaloTimeoutError) as excinfo:
        req.wait()
    err = excinfo.value
    assert (err.source, err.dest, err.tag) == (2, 0, 5)
    assert err.polls == comm.max_polls
    assert "rank 2" in str(err) and "tag 5" in str(err)
    # the fault was recorded for replay
    assert chaos.get_plan().counts() == {"halo.drop": 1}


def test_delayed_message_is_redelivered():
    chaos.set_plan(ChaosPlan.from_spec("halo.delay@1"))
    comm = LocalComm(2)
    payload = np.arange(4.0)
    comm.Isend(payload, source=0, dest=1, tag=2)
    req = comm.Irecv(np.zeros(4), source=0, dest=1, tag=2)
    assert not req.test()  # withheld
    req.wait()  # polls through the delay
    np.testing.assert_array_equal(req._buf, payload)
    assert _counters()["halo_redeliveries"] == 1


def test_corrupted_message_carries_nan():
    chaos.set_plan(ChaosPlan.from_spec("seed=3;halo.corrupt@1"))
    comm = LocalComm(2)
    comm.Isend(np.ones(8), source=0, dest=1)
    buf = np.zeros(8)
    comm.Irecv(buf, source=0, dest=1).wait()
    assert np.isnan(buf).sum() == 1
    (fault,) = chaos.get_plan().injected
    assert fault.detail["index"] == int(np.flatnonzero(np.isnan(buf))[0])


def test_drain_clears_in_flight_state():
    comm = LocalComm(2)
    comm.Isend(np.zeros(2), source=0, dest=1, tag=1)
    assert comm.drain() == [(0, 1, 1)]
    assert comm.pending() == []
    # the same key can be reposted after a drain
    comm.Isend(np.zeros(2), source=0, dest=1, tag=1)


def test_finalize_reports_orphans():
    comm = LocalComm(3)
    comm.Isend(np.zeros(2), source=0, dest=1, tag=1)
    comm.Isend(np.zeros(2), source=1, dest=2, tag=4)
    with pytest.warns(OrphanedMessagesWarning, match=r"\(src=1, dst=2, tag=4\)"):
        orphans = comm.finalize()
    assert orphans == [(0, 1, 1), (1, 2, 4)]
    assert _counters()["orphaned_messages"] == 2
    # clean communicator: silent, empty
    assert comm.finalize() == []


def test_finalize_strict_raises():
    comm = LocalComm(2)
    comm.Isend(np.zeros(2), source=0, dest=1)
    with pytest.raises(RuntimeError, match="never received"):
        comm.finalize(strict=True)


# ---------------------------------------------------------------------------
# HaloUpdater integration
# ---------------------------------------------------------------------------

def _updater():
    part = CubedSpherePartitioner(12, 1)
    updater = HaloUpdater(part, n_halo=3)
    fields = [
        np.random.default_rng(r).random((18, 18, 2))
        for r in range(part.total_ranks)
    ]
    return updater, fields


def test_halo_timeout_names_phase_and_drains():
    updater, fields = _updater()
    chaos.set_plan(ChaosPlan.from_spec("halo.drop@1"))
    with pytest.raises(HaloTimeoutError) as excinfo:
        updater.update_scalar(fields)
    assert excinfo.value.phase == 0
    assert "phase 0" in str(excinfo.value)
    # aborted exchange left nothing in flight: the retry goes through
    assert updater.comm.pending() == []
    assert _counters()["halo_timeouts"] == 1
    chaos.clear_plan()
    updater.update_scalar(fields)


def test_halo_delay_is_absorbed():
    updater, fields = _updater()
    clean = [f.copy() for f in fields]
    HaloUpdater(updater.partitioner, n_halo=3, comm=LocalComm(6)).update_scalar(
        clean
    )
    chaos.set_plan(ChaosPlan.from_spec("halo.delay@5"))
    updater.update_scalar(fields)
    for a, b in zip(fields, clean):
        np.testing.assert_array_equal(a, b)
    assert _counters()["halo_redeliveries"] == 1


def test_halo_finalize_reports_orphans():
    updater, fields = _updater()
    updater.comm.Isend(np.zeros(3), source=0, dest=1, tag=77)
    with pytest.warns(OrphanedMessagesWarning):
        orphans = updater.finalize()
    assert orphans == [(0, 1, 77)]
    assert updater._bufs == {}
