"""Corrupt on-disk checkpoints surface as typed
:class:`CheckpointCorruptError` — path, reason and the exact key delta —
never as a leaked ``zipfile.BadZipFile``/``KeyError``, and never with a
partially overwritten model state."""

import zipfile

import numpy as np
import pytest

from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.resilience import CheckpointCorruptError, CheckpointError
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)

CFG = DynamicalCoreConfig(
    npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=1,
    n_tracers=1,
)


@pytest.fixture
def saved(tmp_path):
    core = DynamicalCore(CFG)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, core.states, 120.0, 1)
    return core, path


def _state_vector(core):
    return [
        np.concatenate(
            [getattr(s, f).ravel() for f in ("u", "v", "w", "pt", "delp",
                                             "delz")]
            + [t.ravel() for t in s.tracers]
        )
        for s in core.states
    ]


def _repack_without(path, *drop):
    """Rewrite the npz without the named members."""
    with zipfile.ZipFile(path) as zf:
        members = {
            name: zf.read(name) for name in zf.namelist()
            if name.rsplit(".", 1)[0] not in drop
        }
    with zipfile.ZipFile(path, "w") as zf:
        for name, blob in members.items():
            zf.writestr(name, blob)


def test_truncated_file_is_typed(saved):
    core, path = saved
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CheckpointCorruptError) as exc_info:
        load_checkpoint(path, core.states)
    assert str(path) in str(exc_info.value)
    assert exc_info.value.path == str(path)


def test_garbage_bytes_are_typed(saved):
    core, path = saved
    path.write_bytes(b"this was never a zip archive")
    with pytest.raises(CheckpointCorruptError):
        load_checkpoint(path, core.states)


def test_missing_array_reported_by_name(saved):
    core, path = saved
    _repack_without(path, "r2_delp")
    before = _state_vector(core)
    with pytest.raises(CheckpointCorruptError) as exc_info:
        load_checkpoint(path, core.states)
    err = exc_info.value
    assert err.missing_keys == ["r2_delp"]
    assert err.extra_keys == []
    assert "r2_delp" in str(err)
    # all-or-nothing: the model state was not half-restored
    for a, b in zip(before, _state_vector(core)):
        np.testing.assert_array_equal(a, b)


def test_unexpected_array_reported_by_name(saved):
    core, path = saved
    data = dict(np.load(path, allow_pickle=False))
    data["r9999_mystery"] = np.zeros(3)
    np.savez(path, **data)
    with pytest.raises(CheckpointCorruptError) as exc_info:
        load_checkpoint(path, core.states)
    assert exc_info.value.extra_keys == ["r9999_mystery"]
    assert "r9999_mystery" in str(exc_info.value)


def test_missing_header_is_typed_with_found_keys(saved):
    core, path = saved
    _repack_without(path, "__meta__")
    with pytest.raises(CheckpointCorruptError) as exc_info:
        load_checkpoint(path, core.states)
    err = exc_info.value
    assert "no header" in str(err)
    assert "r0_u" in err.extra_keys


def test_corrupt_header_is_typed(saved):
    core, path = saved
    data = dict(np.load(path, allow_pickle=False))
    data["__meta__"] = np.frombuffer(b"{not json!", dtype=np.uint8)
    np.savez(path, **data)
    with pytest.raises(CheckpointCorruptError):
        load_checkpoint(path, core.states)


def test_corrupt_error_is_a_checkpoint_error(saved):
    """Existing except-CheckpointError handlers keep working."""
    core, path = saved
    path.write_bytes(b"junk")
    with pytest.raises(CheckpointError):
        load_checkpoint(path, core.states)
    assert issubclass(CheckpointCorruptError, CheckpointError)


def test_version_is_checked_and_reported(saved):
    core, path = saved
    import json

    data = dict(np.load(path, allow_pickle=False))
    meta = json.loads(bytes(data["__meta__"]).decode())
    meta["version"] = CHECKPOINT_VERSION + 13
    data["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez(path, **data)
    with pytest.raises(CheckpointError, match=str(CHECKPOINT_VERSION + 13)):
        load_checkpoint(path, core.states)


def test_missing_file_stays_file_not_found(tmp_path, saved):
    core, _ = saved
    with pytest.raises(FileNotFoundError):
        load_checkpoint(tmp_path / "absent.npz", core.states)
