"""State guards: detection, policy validation, zero-allocation scans."""

import numpy as np
import pytest

from repro.fv3.initial import RankFields
from repro.resilience.guards import GuardConfig, GuardViolation, StateGuard
from repro.runtime.pool import get_pool


def _state(shape=(6, 6, 3), n_tracers=2):
    rng = np.random.default_rng(0)
    return RankFields(
        u=rng.normal(0, 10, shape),
        v=rng.normal(0, 10, shape),
        w=rng.normal(0, 1, shape),
        pt=np.full(shape, 280.0),
        delp=np.full(shape, 500.0),
        delz=np.full(shape, -100.0),
        tracers=[rng.random(shape) for _ in range(n_tracers)],
    )


def test_clean_state_passes():
    guard = StateGuard()
    assert guard.check_states([_state(), _state()]) == []
    assert guard.checks == 1 and guard.trips == 0


def test_nan_and_inf_detected_with_counts():
    state = _state()
    state.pt[1, 2, 0] = np.nan
    state.u[0, 0, 1] = np.inf
    state.tracers[1][3, 3, 2] = np.nan
    violations = StateGuard().check_states([_state(), state], step=4)
    got = {(v.rank, v.field): (v.kind, v.value, v.step) for v in violations}
    assert got == {
        (1, "pt"): ("nonfinite", 1, 4),
        (1, "u"): ("nonfinite", 1, 4),
        (1, "tracer1"): ("nonfinite", 1, 4),
    }


def test_nonpositive_delp_detected():
    state = _state()
    state.delp[2, 2, 1] = -3.0
    (violation,) = StateGuard().check_states([state])
    assert (violation.field, violation.kind) == ("delp", "nonpositive")
    assert violation.value == -3.0


def test_wind_bound():
    state = _state()
    state.v[1, 1, 0] = -500.0
    (violation,) = StateGuard(GuardConfig(max_wind=300.0)).check_states(
        [state]
    )
    assert (violation.field, violation.kind) == ("v", "wind_bound")
    assert violation.value == 500.0
    # bound disabled: clean
    assert StateGuard(GuardConfig(max_wind=0.0)).check_states([state]) == []


def test_checks_can_be_disabled():
    state = _state()
    state.pt[0, 0, 0] = np.nan
    state.delp[0, 0, 0] = -1.0
    config = GuardConfig(check_finite=False, check_positive_delp=False)
    assert StateGuard(config).check_states([state]) == []


def test_policy_validated():
    with pytest.raises(ValueError, match="unknown guard policy"):
        GuardConfig(policy="explode")


def test_violation_messages_name_everything():
    text = str(GuardViolation(3, "delp", "nonpositive", -1.5, step=9))
    assert "rank 3" in text and "'delp'" in text and "step 9" in text


def test_guard_scan_allocates_nothing_in_steady_state():
    states = [_state(), _state()]
    guard = StateGuard()
    guard.check_states(states)  # warm-up seeds the pooled bool scratch
    pool = get_pool()
    before = pool.stats()
    for _ in range(3):
        assert guard.check_states(states) == []
    after = pool.stats()
    assert after["allocations"] == before["allocations"]
    assert after["allocated_bytes"] == before["allocated_bytes"]
    # every scan went through the pool and hit the free list
    assert after["reuse_hits"] > before["reuse_hits"]
