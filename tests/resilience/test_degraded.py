"""Degraded-mode execution: a failing compiled backend transparently
re-executes on the bit-exact NumPy debug backend."""

import numpy as np
import pytest

from repro import resilience
from repro.dsl import Field, PARALLEL, computation, interval, stencil
from repro.dsl.backends import register_backend, unregister_backend
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan
from repro.resilience.errors import FallbackWarning, InjectedCompileError


@stencil
def _axpy(a: Field, x: Field, y: Field, alpha: float):
    with computation(PARALLEL), interval(...):
        a = alpha * x + y[1, 0, 0]


def _inputs(seed=0):
    rng = np.random.default_rng(seed)
    shape = (10, 9, 4)
    return {
        "a": np.zeros(shape),
        "x": rng.random(shape),
        "y": rng.random(shape),
    }


def _reference():
    ref = _inputs()
    _axpy(**ref, alpha=2.5, backend="numpy")
    return ref["a"]


def test_injected_compile_failure_falls_back_bit_identical():
    chaos.set_plan(ChaosPlan.from_spec("compile.fail@1"))
    fields = _inputs()
    with pytest.warns(FallbackWarning, match="re-executed on the NumPy"):
        _axpy(**fields, alpha=2.5, backend="dataflow")
    np.testing.assert_array_equal(fields["a"], _reference())
    summary = resilience.summary()
    assert summary["counters"]["fallbacks"] == 1
    (entry,) = summary["fallback_log"]
    assert entry[0] == "_axpy" and entry[1] == "dataflow"
    assert "InjectedCompileError" in entry[2]
    # the injection is one-shot: the next call compiles and runs clean
    fields2 = _inputs()
    _axpy(**fields2, alpha=2.5, backend="dataflow")
    np.testing.assert_array_equal(fields2["a"], _reference())
    assert resilience.summary()["counters"]["fallbacks"] == 1


def test_real_backend_failure_falls_back_too():
    class _Exploding:
        def __init__(self, stencil_object):
            self.stencil_object = stencil_object

        def __call__(self, fields, scalars, origin, domain, bounds):
            raise RuntimeError("flaky accelerator")

    register_backend("exploding", _Exploding)
    try:
        fields = _inputs()
        with pytest.warns(FallbackWarning, match="flaky accelerator"):
            _axpy(**fields, alpha=2.5, backend="exploding")
        np.testing.assert_array_equal(fields["a"], _reference())
    finally:
        unregister_backend("exploding")


def test_fallback_disabled_propagates(monkeypatch):
    monkeypatch.setenv("REPRO_FALLBACK", "0")
    chaos.set_plan(ChaosPlan.from_spec("compile.fail@1"))
    # drop the cached executor so the compile path (and its chaos
    # consult) actually runs
    _axpy._executors.pop("dataflow", None)
    with pytest.raises(InjectedCompileError):
        _axpy(**_inputs(), alpha=2.5, backend="dataflow")
    assert resilience.summary()["counters"]["fallbacks"] == 0


def test_numpy_backend_failures_never_loop():
    """A failure on the fallback backend itself propagates (no
    fallback-to-self recursion)."""

    @stencil
    def _inc(a: Field):
        with computation(PARALLEL), interval(...):
            a = a + 1.0

    def _boom(fields, scalars, origin, domain, bounds):
        raise RuntimeError("numpy backend broken")

    _inc._executors["numpy"] = _boom
    with pytest.raises(RuntimeError, match="numpy backend broken"):
        _inc(a=np.ones((8, 8, 3)), backend="numpy")
    assert resilience.summary()["counters"]["fallbacks"] == 0


def test_argument_errors_stay_loud():
    """Binding/validation errors are user errors, not backend failures —
    they must not be degraded away."""
    with pytest.raises(TypeError, match="missing argument"):
        _axpy(a=np.zeros((4, 4, 2)), backend="dataflow")
