"""Checkpoint/restart: in-memory snapshot rollback and the versioned
on-disk format, including the save → perturb → restore round-trip
property."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Snapshot,
    checkpoint_meta,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.errors import CheckpointError

CFG = DynamicalCoreConfig(
    npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=1,
    n_tracers=2,
)


@pytest.fixture(scope="module")
def core():
    return DynamicalCore(CFG)


def _state_vector(core):
    return [
        np.concatenate(
            [getattr(s, f).ravel() for f in ("u", "v", "w", "pt", "delp",
                                             "delz")]
            + [t.ravel() for t in s.tracers]
        )
        for s in core.states
    ]


def _perturb(core, rng):
    """Scribble over every prognostic array (NaNs included)."""
    for s in core.states:
        for f in ("u", "v", "w", "pt", "delp", "delz"):
            arr = getattr(s, f)
            arr[:] = rng.normal(size=arr.shape)
            arr.flat[rng.integers(arr.size)] = np.nan
        for t in s.tracers:
            t[:] = rng.random(t.shape)


# ---------------------------------------------------------------------------
# in-memory snapshots
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_snapshot_roundtrip_is_bit_identical(core, seed):
    """save → perturb → restore ⇒ bit-identical state, any perturbation."""
    reference = _state_vector(core)
    snapshot = Snapshot.capture(core.states, core.time, core.step_count)
    _perturb(core, np.random.default_rng(seed))
    snapshot.restore(core.states)
    for ref, got in zip(reference, _state_vector(core)):
        np.testing.assert_array_equal(ref, got)


def test_snapshot_is_isolated_from_later_mutation(core):
    snapshot = Snapshot.capture(core.states, core.time, core.step_count)
    before = snapshot.arrays[0]["pt"].copy()
    core.states[0].pt += 5.0
    np.testing.assert_array_equal(snapshot.arrays[0]["pt"], before)
    snapshot.restore(core.states)


def test_snapshot_rank_mismatch_rejected(core):
    snapshot = Snapshot.capture(core.states, 0.0, 0)
    with pytest.raises(CheckpointError, match="ranks"):
        snapshot.restore(core.states[:-1])


# ---------------------------------------------------------------------------
# on-disk checkpoints
# ---------------------------------------------------------------------------

def test_disk_roundtrip_bit_identical(tmp_path):
    core = DynamicalCore(CFG)
    core.step_dynamics()
    reference = _state_vector(core)
    path = core.save_checkpoint(tmp_path / "ckpt.npz")
    meta = checkpoint_meta(path)
    assert meta["version"] == CHECKPOINT_VERSION
    assert meta["step"] == 1 and meta["n_ranks"] == 6
    assert meta["npx"] == CFG.npx

    _perturb(core, np.random.default_rng(1))
    core.time = -1.0
    core.step_count = 99
    restored = core.restore_checkpoint(path)
    assert core.time == restored["time"] == pytest.approx(CFG.dt_atmos)
    assert core.step_count == 1
    for ref, got in zip(reference, _state_vector(core)):
        np.testing.assert_array_equal(ref, got)


def test_version_skew_rejected(tmp_path):
    core = DynamicalCore(CFG)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, core.states, 0.0, 0)
    with np.load(path) as data:
        payload = {k: data[k] for k in data.files}
    meta = json.loads(bytes(payload["__meta__"]).decode())
    meta["version"] = CHECKPOINT_VERSION + 1
    payload["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    ).copy()
    np.savez(path, **payload)
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path, core.states)


def test_shape_mismatch_leaves_state_untouched(tmp_path):
    big = DynamicalCore(CFG)
    small = DynamicalCore(
        DynamicalCoreConfig(npx=8, npz=4, layout=1, n_tracers=2)
    )
    path = save_checkpoint(tmp_path / "big.npz", big.states, 0.0, 0)
    reference = _state_vector(small)
    with pytest.raises(CheckpointError, match="shape"):
        load_checkpoint(path, small.states)
    for ref, got in zip(reference, _state_vector(small)):
        np.testing.assert_array_equal(ref, got)


def test_tracer_count_mismatch_rejected(tmp_path):
    core = DynamicalCore(CFG)
    path = save_checkpoint(tmp_path / "c.npz", core.states, 0.0, 0)
    other = DynamicalCore(
        DynamicalCoreConfig(npx=12, npz=4, layout=1, n_tracers=1)
    )
    with pytest.raises(CheckpointError, match="tracers"):
        load_checkpoint(path, other.states)


def test_not_a_checkpoint_rejected(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, a=np.zeros(3))
    with pytest.raises(CheckpointError, match="no header"):
        checkpoint_meta(path)


def test_periodic_checkpointing(tmp_path):
    from repro.resilience import ResilienceConfig

    core = DynamicalCore(
        CFG,
        resilience=ResilienceConfig(
            checkpoint_every=2, checkpoint_dir=str(tmp_path)
        ),
    )
    for _ in range(4):
        core.step_dynamics()
    written = sorted(p.name for p in tmp_path.glob("*.npz"))
    assert written == ["ckpt_step000002.npz", "ckpt_step000004.npz"]


def test_checkpoint_every_requires_dir():
    from repro.resilience import ResilienceConfig

    with pytest.raises(ValueError, match="checkpoint_dir"):
        ResilienceConfig(checkpoint_every=5)
