"""Auto-tuning and transfer-tuning tests (Sec. VI-B)."""

import numpy as np
import pytest

from repro.core.autotune import make_evaluator, tune_cutout
from repro.core.machine import P100
from repro.core.perfmodel import model_sdfg_time
from repro.core.transfer import extract_patterns, find_match, transfer_patterns
from repro.dsl import Field, PARALLEL, computation, interval, stencil
from repro.sdfg import SDFG
from repro.sdfg.codegen import compile_sdfg
from repro.sdfg.cutout import state_cutouts, time_cutout
from repro.sdfg.nodes import StencilComputation


@stencil
def _produce(a: Field, t: Field):
    with computation(PARALLEL), interval(...):
        t = a * 2.0 + 1.0


@stencil
def _consume(t: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = t[-1, 0, 0] + t[1, 0, 0]


def _motif_state(sdfg, state_name, in_name, out_name, shape, domain, origin):
    """Add one producer→consumer motif (the recurring pattern) to a state."""
    t_name = sdfg.add_transient(f"t_{state_name}", shape)
    state = sdfg.add_state(state_name)
    prod_origin = (origin[0] - 1, origin[1], origin[2])
    prod_domain = (domain[0] + 2, domain[1], domain[2])
    state.add(StencilComputation(
        _produce.definition, _produce.extents,
        mapping={"a": in_name, "t": t_name},
        domain=prod_domain, origin=prod_origin,
    ))
    state.add(StencilComputation(
        _consume.definition, _consume.extents,
        mapping={"t": t_name, "out": out_name},
        domain=domain, origin=origin,
    ))
    return state


def _program(n_states=4, shape=(12, 10, 4), domain=(10, 8, 4), origin=(1, 1, 0)):
    sdfg = SDFG("prog")
    sdfg.add_array("x", shape)
    for i in range(n_states):
        sdfg.add_array(f"y{i}", shape)
        _motif_state(sdfg, f"motif_{i}", "x", f"y{i}", shape, domain, origin)
    sdfg.expand_library_nodes()
    return sdfg


def test_state_cutouts_extracted():
    sdfg = _program()
    cutouts = state_cutouts(sdfg)
    assert len(cutouts) == 4
    c = cutouts[0]
    assert "x" in c.inputs
    assert c.outputs == ["y0"]
    assert len(c.kernels()) == 2


def test_cutout_synthesis_and_timing():
    sdfg = _program(n_states=1)
    (cutout,) = state_cutouts(sdfg)
    arrays = cutout.synthesize_arrays()
    assert set(arrays) == {"x", "y0"}
    t = time_cutout(cutout, repetitions=2)
    assert t > 0


def test_tune_cutout_finds_otf_fusion():
    sdfg = _program(n_states=1)
    (cutout,) = state_cutouts(sdfg)
    configs, evaluated = tune_cutout(cutout, make_evaluator(machine=P100))
    assert evaluated >= 2  # baseline + at least the OTF config
    best = configs[0]
    assert not best.is_baseline
    assert best.steps[0][0] == "otf"
    baseline = next(c for c in configs if c.is_baseline)
    assert best.score < baseline.score


def test_extract_patterns_top_m_and_dedup():
    sdfg = _program(n_states=2)
    cutouts = state_cutouts(sdfg)
    configs = []
    for c in cutouts:
        cfgs, _ = tune_cutout(c, make_evaluator(machine=P100))
        configs.extend(cfgs)
    patterns = extract_patterns(configs, top_m=2)
    assert patterns
    # the same motif in both states yields ONE deduplicated pattern
    otf_patterns = [p for p in patterns if p.xform == "otf"]
    assert len(otf_patterns) == 1
    assert otf_patterns[0].labels == (("_produce_c0",), ("_consume_c0",))


def test_transfer_applies_pattern_across_whole_graph():
    sdfg = _program(n_states=4)
    # tune only the FIRST state (the paper tunes FVT, transfers to all)
    cutouts = state_cutouts(sdfg)[:1]
    configs = []
    for c in cutouts:
        cfgs, _ = tune_cutout(c, make_evaluator(machine=P100))
        configs.extend(cfgs)
    patterns = extract_patterns(configs, top_m=2)
    before = model_sdfg_time(sdfg, P100)
    result = transfer_patterns(sdfg, patterns, machine=P100)
    after = model_sdfg_time(sdfg, P100)
    assert result.applied == 4  # one fusion per motif state
    assert after < before
    # every state is now a single fused kernel
    for state in sdfg.states:
        assert len(state.kernels) == 1


def test_transfer_preserves_program_output():
    shape, domain, origin = (12, 10, 4), (10, 8, 4), (1, 1, 0)
    rng = np.random.default_rng(3)
    x = rng.random(shape)

    def run(sdfg):
        arrays = {"x": x.copy()}
        for i in range(4):
            arrays[f"y{i}"] = np.zeros(shape)
        compile_sdfg(sdfg)(arrays=arrays)
        return arrays

    ref = run(_program())
    tuned = _program()
    cutouts = state_cutouts(tuned)[:1]
    configs = []
    for c in cutouts:
        cfgs, _ = tune_cutout(c, make_evaluator(machine=P100))
        configs.extend(cfgs)
    patterns = extract_patterns(configs, top_m=2)
    transfer_patterns(tuned, patterns, machine=P100)
    got = run(tuned)
    for i in range(4):
        np.testing.assert_array_equal(ref[f"y{i}"], got[f"y{i}"])


def test_find_match_respects_labels():
    sdfg = _program(n_states=1)
    from repro.core.transfer import Pattern

    wrong = Pattern("otf", (("nonexistent_c0",), ("_consume_c0",)))
    assert find_match(sdfg, sdfg.states[0], wrong) is None


def test_transfer_requires_local_improvement():
    """Patterns are only applied when the model reports a local win."""
    sdfg = _program(n_states=1)
    from repro.core.transfer import Pattern

    pattern = Pattern("otf", (("_produce_c0",), ("_consume_c0",)))
    result = transfer_patterns(sdfg, [pattern], machine=P100,
                               require_improvement=True)
    assert result.applied == 1  # OTF here removes a transient: a clear win
