"""Machine-model and performance-model tests."""

import numpy as np
import pytest

from repro.core.machine import A100, ARIES, HASWELL, P100, GB, GiB
from repro.core.perfmodel import (
    bound_report,
    coalescing_factor,
    format_bound_report,
    model_kernel_time,
    model_sdfg_time,
    parallel_work,
    peak_time,
)
from repro.dsl import Field, FORWARD, PARALLEL, computation, interval, stencil
from repro.sdfg import SDFG
from repro.sdfg.nodes import StencilComputation


@stencil
def _copy(a: Field, b: Field):
    with computation(PARALLEL), interval(...):
        b = a


@stencil
def _cumsum(a: Field, out: Field):
    with computation(FORWARD):
        with interval(0, 1):
            out = a
        with interval(1, None):
            out = out[0, 0, -1] + a


def _single_kernel_sdfg(stencil_obj, shape, mapping=None):
    sdfg = SDFG("m")
    for p in stencil_obj.definition.field_params:
        sdfg.add_array(p.name, shape)
    state = sdfg.add_state("s0")
    state.add(
        StencilComputation(
            stencil_obj.definition,
            stencil_obj.extents,
            mapping=mapping
            or {p.name: p.name for p in stencil_obj.definition.field_params},
            domain=shape,
            origin=(0, 0, 0),
        )
    )
    sdfg.expand_library_nodes()
    return sdfg


def test_bandwidth_constants_match_paper():
    # Sec. VIII-A: 43.77 GB/s CPU, 501.1 GB/s GPU peak; 40.99 / 489.83 GiB/s
    # achieved; ceiling speedup 11.45x
    assert HASWELL.peak_bandwidth == pytest.approx(43.77 * GB)
    assert P100.peak_bandwidth == pytest.approx(501.1 * GB)
    assert HASWELL.achievable_bandwidth == pytest.approx(40.99 * GiB)
    assert P100.achievable_bandwidth == pytest.approx(489.83 * GiB)
    ratio = P100.peak_bandwidth / HASWELL.peak_bandwidth
    assert ratio == pytest.approx(11.45, abs=0.01)
    assert A100.peak_bandwidth / P100.peak_bandwidth == pytest.approx(2.83)


def test_copy_stencil_peak_time_is_two_transfers():
    shape = (192, 192, 80)
    sdfg = _single_kernel_sdfg(_copy, shape)
    (kern,) = sdfg.all_kernels()
    nbytes = 2 * np.prod(shape) * 8  # one read + one write
    assert kern.moved_bytes(sdfg) == nbytes
    assert peak_time(kern, sdfg, P100) == pytest.approx(
        nbytes / P100.peak_bandwidth
    )


def test_copy_stencil_near_peak_on_saturating_domain():
    # at the target per-node domain the copy stencil must sustain ~97.8% of
    # peak (489.83 GiB / 501.1 GB), i.e. the measured/peak gap of Sec. VIII
    shape = (192, 192, 80)
    sdfg = _single_kernel_sdfg(_copy, shape)
    from repro.core.heuristics import apply_schedule_heuristics

    apply_schedule_heuristics(sdfg, P100)
    (kern,) = sdfg.all_kernels()
    t = model_kernel_time(kern, sdfg, P100)
    utilization = peak_time(kern, sdfg, P100) / t
    assert 0.90 < utilization < 0.985


def test_vertical_solver_exposes_2d_parallelism():
    shape = (128, 128, 80)
    sdfg = _single_kernel_sdfg(_cumsum, shape)
    (kern,) = sdfg.all_kernels()
    assert parallel_work(kern) == 128 * 128
    # GPU occupancy at 2D parallelism is well below saturation
    assert P100.occupancy(parallel_work(kern)) < 0.5
    # ... whereas the 3D copy stencil at the target size saturates
    assert P100.occupancy(192 * 192 * 80) > 0.95


def test_gpu_underutilization_shrinks_with_domain():
    """Table II trend: GT4Py scaling factors below the grid-point ratio."""
    t = {}
    for n in (128, 192, 256, 384):
        sdfg = _single_kernel_sdfg(_cumsum, (n, n, 80))
        from repro.core.heuristics import apply_schedule_heuristics

        apply_schedule_heuristics(sdfg, P100)
        (kern,) = sdfg.all_kernels()
        t[n] = model_kernel_time(kern, sdfg, P100)
    # scaling below ideal: t grows slower than grid points
    assert t[192] / t[128] < (192 / 128) ** 2
    assert t[384] / t[128] < (384 / 128) ** 2
    # and the gap narrows as parallelism saturates
    gap_small = ((192 / 128) ** 2) / (t[192] / t[128])
    gap_large = ((384 / 256) ** 2) / (t[384] / t[256])
    assert gap_large < gap_small


@stencil
def _lap(a: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = a[-1, 0, 0] + a[1, 0, 0] + a[0, -1, 0] + a[0, 1, 0] - 4.0 * a


def test_cpu_cache_model_superlinear_scaling():
    """Table II trend: FORTRAN times of *reusing* stencils scale worse
    than the domain ratio once slices outgrow the cache."""
    t = {}
    for n in (128, 512):
        shape = (n + 2, n + 2, 80)
        sdfg = SDFG("m")
        sdfg.add_array("a", shape)
        sdfg.add_array("out", shape)
        state = sdfg.add_state("s0")
        state.add(StencilComputation(
            _lap.definition, _lap.extents,
            mapping={"a": "a", "out": "out"},
            domain=(n, n, 80), origin=(1, 1, 0),
        ))
        sdfg.expand_library_nodes()
        (kern,) = sdfg.all_kernels()
        t[n] = model_kernel_time(kern, sdfg, HASWELL)
    assert t[512] / t[128] > (512 / 128) ** 2


def test_cpu_streaming_kernel_runs_at_stream_bandwidth():
    """A pure copy exhibits no reuse: the CPU model must charge STREAM
    bandwidth, not cache bandwidth (Sec. VIII-A measurement)."""
    shape = (192, 192, 80)
    sdfg = _single_kernel_sdfg(_copy, shape)
    (kern,) = sdfg.all_kernels()
    t = model_kernel_time(kern, sdfg, HASWELL)
    bw = kern.moved_bytes(sdfg) / t
    assert bw == pytest.approx(HASWELL.achievable_bandwidth, rel=0.05)


def test_cpu_effective_bandwidth_monotone():
    bw_small = HASWELL.effective_cpu_bandwidth(1 * 2**20)
    bw_large = HASWELL.effective_cpu_bandwidth(512 * 2**20)
    assert bw_small > bw_large
    assert bw_large >= HASWELL.achievable_bandwidth * 0.95


def test_coalescing_penalty_for_naive_schedule():
    shape = (64, 64, 16)
    sdfg = _single_kernel_sdfg(_copy, shape)
    (kern,) = sdfg.all_kernels()
    # default expansion schedule is naive: K innermost → uncoalesced
    assert coalescing_factor(kern, P100) == P100.uncoalesced_fraction
    from repro.core.heuristics import apply_schedule_heuristics

    apply_schedule_heuristics(sdfg, P100)
    assert coalescing_factor(kern, P100) == 1.0


def test_heuristics_recover_paper_schedules():
    from repro.core.heuristics import apply_schedule_heuristics

    shape = (64, 64, 32)
    sdfg = _single_kernel_sdfg(_copy, shape)
    chosen = apply_schedule_heuristics(sdfg, P100)
    assert chosen["horizontal"].iteration_order == (
        "Interval", "Operation", "K", "J", "I",
    )
    sdfg2 = _single_kernel_sdfg(_cumsum, shape)
    chosen2 = apply_schedule_heuristics(sdfg2, P100)
    assert chosen2["vertical"].iteration_order[-1] == "K"
    assert "K" in sdfg2.all_kernels()[0].schedule.loop_dims


def test_model_sdfg_time_accounts_for_loops():
    shape = (32, 32, 8)
    sdfg = _single_kernel_sdfg(_copy, shape)
    t1 = model_sdfg_time(sdfg, P100)
    sdfg.add_loop(0, 0, 5)
    assert model_sdfg_time(sdfg, P100) == pytest.approx(5 * t1)


def test_bound_report_ranks_and_formats():
    shape = (32, 32, 8)
    sdfg = _single_kernel_sdfg(_copy, shape)
    rows = bound_report(sdfg, P100)
    assert len(rows) == 1
    assert 0.0 < rows[0].utilization <= 1.0
    text = format_bound_report(rows)
    assert "% peak" in text and "_copy" in text


def test_network_halo_exchange_time():
    msgs = [8 * 192 * 80 * 3] * 4  # 4 neighbor messages
    t = ARIES.halo_exchange_time(msgs)
    assert t > ARIES.latency * 4
    assert t == pytest.approx(
        ARIES.latency * 4 + max(msgs) / ARIES.bandwidth
    )
    assert ARIES.halo_exchange_time([]) == 0.0
