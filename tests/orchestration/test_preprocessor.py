"""Preprocessor tests: constant propagation, unrolling, dead branches."""

import ast

from repro.orchestration.closure import get_function_ast
from repro.orchestration.preprocessor import preprocess_function, try_const_eval


def _src(tree):
    return ast.unparse(tree)


def test_constant_name_folding():
    def f():
        x = N * 2
        return x

    out = preprocess_function(get_function_ast(f), {"N": 21})
    assert "21 * 2" in _src(out) or "x = 42" in _src(out)


def test_dead_branch_elimination_true():
    def f():
        if HYDROSTATIC:
            do_hydro()
        else:
            do_nonhydro()

    out = preprocess_function(get_function_ast(f), {"HYDROSTATIC": False})
    src = _src(out)
    assert "do_nonhydro" in src
    assert "do_hydro()" not in src


def test_dead_branch_keeps_runtime_conditions():
    def f(flag):
        if flag:
            a()

    out = preprocess_function(get_function_ast(f), {})
    assert "if flag" in _src(out)


def test_loop_unrolling_when_var_used():
    def f():
        for q in range(NQ):
            advect(tracers[q])

    out = preprocess_function(get_function_ast(f), {"NQ": 3})
    src = _src(out)
    assert "for q" not in src
    assert src.count("advect") == 3
    assert "tracers[0]" in src and "tracers[2]" in src


def test_counted_loop_kept_when_var_unused():
    def f():
        for _ in range(N_SPLIT):
            acoustic_step()

    out = preprocess_function(get_function_ast(f), {"N_SPLIT": 6})
    src = _src(out)
    assert "for _ in range(6)" in src
    assert src.count("acoustic_step") == 1


def test_constant_dict_access_folds():
    def f():
        n = CONFIG["n_split"]
        for _ in range(n):
            step()

    out = preprocess_function(
        get_function_ast(f), {"CONFIG": {"n_split": 4}}
    )
    src = _src(out)
    assert "range(4)" in src


def test_nested_unroll_and_branch():
    def f():
        for q in range(NQ):
            if q == 0:
                init(q)
            else:
                advance(q)

    out = preprocess_function(get_function_ast(f), {"NQ": 2})
    src = _src(out)
    assert "init(0)" in src
    assert "advance(1)" in src
    assert "if" not in src


def test_try_const_eval_safety():
    ok, _ = try_const_eval(ast.parse("open('x')", mode="eval").body, {})
    assert not ok
    ok, value = try_const_eval(ast.parse("min(3, N)", mode="eval").body, {"N": 2})
    assert ok and value == 2


def test_assigned_constants_propagate_downstream():
    def f():
        k = NK - 1
        if k == 79:
            special()
        else:
            general()

    out = preprocess_function(get_function_ast(f), {"NK": 80})
    src = _src(out)
    assert "special" in src and "general()" not in src
