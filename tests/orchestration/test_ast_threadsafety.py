"""Concurrent ast<->object conversion must be serialized.

CPython 3.11 keeps the ast module's recursion-depth counter in shared
per-interpreter state, so two threads running ``ast.parse`` or
``compile(<ast object>, ...)`` concurrently can clobber each other and
die with ``SystemError: AST constructor recursion depth mismatch``.
Orchestrated-program calls from rank threads hit exactly those paths,
so every repro conversion site takes ``repro._astsync.AST_LOCK``.

The stress tests are probabilistic reproducers (they flake without the
lock, pass deterministically with it); the cache test pins the hot-path
fix that removed ast.parse from every program call.
"""

import ast
import threading

from repro._astsync import AST_LOCK
from repro.orchestration.closure import get_function_ast
from repro.orchestration.preprocessor import try_const_eval


def _sample_function(self, a, b, c):
    x = a + b * c
    for i in range(3):
        x = x + i
    if x > 0:
        return x
    return -x


def _hammer(worker, n_threads=8, iterations=40):
    errors = []
    start = threading.Barrier(n_threads)

    def body():
        try:
            start.wait()
            for _ in range(iterations):
                worker()
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    threads = [threading.Thread(target=body) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == [], f"concurrent ast conversion failed: {errors[:3]}"


def test_concurrent_get_function_ast_is_safe():
    def worker():
        node = get_function_ast(_sample_function)
        assert node.name == "_sample_function"

    _hammer(worker)


def test_concurrent_ast_object_compile_is_safe():
    expr = ast.parse("min(3, 4) + len('xy') * 2", mode="eval").body

    def worker():
        ok, value = try_const_eval(expr, {})
        assert ok and value == 7

    _hammer(worker)


def test_ast_lock_is_reentrant():
    with AST_LOCK:
        with AST_LOCK:
            node = get_function_ast(_sample_function)
    assert isinstance(node, ast.FunctionDef)


def test_program_caches_parameter_names():
    import numpy as np

    from repro.dsl import Field, stencil, computation, interval, PARALLEL
    from repro.orchestration import orchestrate

    @stencil
    def _copy(q: Field, out: Field):
        with computation(PARALLEL), interval(...):
            out = q + 0.0

    class Model:
        def __init__(self):
            self.q = np.random.default_rng(0).random((10, 10, 4))
            self.out = np.zeros_like(self.q)

        @orchestrate
        def step(self, factor: float):
            _copy(self.q, self.out)

    model = Model()
    program = Model.step.__get__(model)
    assert program._param_names is None
    program(1.0)
    assert program._param_names == ["factor"]
    first = program._param_names
    program(2.0)
    assert program._param_names is first  # parsed once, reused
    np.testing.assert_array_equal(model.out, model.q)
