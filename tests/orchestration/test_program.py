"""Orchestration tests: whole-program SDFG construction and execution."""

import numpy as np
import pytest

from repro.dsl import Field, PARALLEL, computation, interval, stencil
from repro.orchestration import orchestrate
from repro.orchestration.closure import resolve_closure
from repro.orchestration.program import OrchestrationError
from repro.sdfg.nodes import Callback, Tasklet


@stencil
def _scale(a: Field, out: Field, factor: float):
    with computation(PARALLEL), interval(...):
        out = a * factor


@stencil
def _add(a: Field, b: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = a + b


SHAPE = (6, 6, 4)


class Module:
    """A model module in the paper's OOP style (Sec. IV-A)."""

    def __init__(self):
        self.tmp = np.zeros(SHAPE)

    @orchestrate
    def __call__(self, q: np.ndarray, out: np.ndarray, dt: float):
        _scale(q, self.tmp, dt, origin=(0, 0, 0), domain=SHAPE)
        _add(q, self.tmp, out, origin=(0, 0, 0), domain=SHAPE)


def test_closure_resolution_fig6():
    class ClassA:
        def __init__(self, arr):
            self.q = arr

        def method(self, a):
            self.q = a * self.q
            return None

    inst = ClassA(np.ones(3))
    node, bindings = resolve_closure(ClassA.method, inst)
    assert "__g_self_q" in bindings
    assert bindings["__g_self_q"] is inst.q
    # the free function signature no longer has self
    assert [a.arg for a in node.args.args] == ["a"]


def test_orchestrated_method_builds_and_runs():
    mod = Module()
    q = np.random.default_rng(0).random(SHAPE)
    out = np.zeros(SHAPE)
    mod(q, out, 0.5)
    np.testing.assert_allclose(out, q + 0.5 * q)
    # dt is a runtime scalar: changing it does NOT trigger a rebuild
    prog = mod.__call__ if hasattr(mod.__call__, "sdfg") else None


def test_runtime_scalar_changes_without_rebuild():
    mod = Module()
    q = np.random.default_rng(1).random(SHAPE)
    out = np.zeros(SHAPE)
    call = type(mod).__dict__["__call__"].__get__(mod)
    call(q, out, 0.5)
    sdfg_first = call.sdfg
    call(q, out, 2.0)
    assert call.sdfg is sdfg_first  # same build reused
    np.testing.assert_allclose(out, q + 2.0 * q)


def test_array_consolidation_by_identity():
    """The same array reached via two attribute paths is ONE container."""

    shared = np.zeros(SHAPE)

    class A:
        def __init__(self):
            self.x = shared

    class B:
        def __init__(self):
            self.y = shared

    a, b = A(), B()

    @orchestrate
    def prog(q):
        _scale(q, a.x, 2.0, origin=(0, 0, 0), domain=SHAPE)
        _add(q, b.y, b.y, origin=(0, 0, 0), domain=SHAPE)

    q = np.random.default_rng(2).random(SHAPE)
    prog.build(q)
    # only q and the shared array: 2 non-transient containers
    non_transient = [n for n, d in prog.sdfg.arrays.items() if not d.transient]
    assert len(non_transient) == 2


def test_counted_loop_becomes_loop_region():
    class Stepper:
        def __init__(self):
            self.acc = np.zeros(SHAPE)
            self.n_split = 5

        @orchestrate
        def run(self, q):
            for _ in range(self.n_split):
                _add(self.acc, q, self.acc, origin=(0, 0, 0), domain=SHAPE)

    s = Stepper()
    q = np.ones(SHAPE)
    runner = type(s).__dict__["run"].__get__(s)
    runner(q)
    assert len(runner.sdfg.loops) == 1
    assert runner.sdfg.loops[0].count == 5
    np.testing.assert_allclose(s.acc, 5.0)


def test_dead_branch_from_config_constant():
    class Core:
        def __init__(self, hydrostatic):
            self.hydrostatic = hydrostatic
            self.buf = np.zeros(SHAPE)

        @orchestrate
        def step(self, q):
            if self.hydrostatic:
                _scale(q, self.buf, 0.0, origin=(0, 0, 0), domain=SHAPE)
            else:
                _scale(q, self.buf, 2.0, origin=(0, 0, 0), domain=SHAPE)

    core = Core(hydrostatic=False)
    q = np.ones(SHAPE)
    stepper = type(core).__dict__["step"].__get__(core)
    stepper(q)
    np.testing.assert_allclose(core.buf, 2.0)
    # only one stencil call in the graph: the dead branch was eliminated
    assert len(stepper.sdfg.all_kernels()) == 1


def test_callback_fallback_and_pystate_ordering():
    log = []

    def unparseable(tag):
        log.append(tag)

    class WithCallback:
        def __init__(self):
            self.buf = np.zeros(SHAPE)

        @orchestrate
        def step(self, q):
            unparseable("before")
            _scale(q, self.buf, 3.0, origin=(0, 0, 0), domain=SHAPE)
            unparseable("after")

    w = WithCallback()
    stepper = type(w).__dict__["step"].__get__(w)
    stepper(np.ones(SHAPE))
    assert log == ["before", "after"]
    callbacks = [
        n for s in stepper.sdfg.states for n in s.nodes
        if isinstance(n, Callback)
    ]
    assert len(callbacks) == 2
    reads, writes = stepper.sdfg.states[0].node_reads_writes(callbacks[0])
    assert "__pystate" in reads and "__pystate" in writes


def test_nested_orchestrated_modules_inline():
    inner_mod = Module()

    class Outer:
        def __init__(self):
            self.result = np.zeros(SHAPE)

        @orchestrate
        def run(self, q, dt: float):
            inner_mod(q, self.result, dt)
            _scale(self.result, self.result, 2.0,
                   origin=(0, 0, 0), domain=SHAPE)

    outer = Outer()
    q = np.random.default_rng(3).random(SHAPE)
    runner = type(outer).__dict__["run"].__get__(outer)
    runner(q, 0.5)
    np.testing.assert_allclose(outer.result, 2.0 * (q + 0.5 * q))
    # no callbacks: everything inlined
    assert not any(
        isinstance(n, Callback)
        for s in runner.sdfg.states
        for n in s.nodes
    )


def test_scalar_arithmetic_becomes_tasklet():
    class Half:
        def __init__(self):
            self.buf = np.zeros(SHAPE)

        @orchestrate
        def step(self, q, dt: float):
            _scale(q, self.buf, dt / 2.0, origin=(0, 0, 0), domain=SHAPE)

    h = Half()
    stepper = type(h).__dict__["step"].__get__(h)
    stepper(np.ones(SHAPE), 3.0)
    np.testing.assert_allclose(h.buf, 1.5)
    tasklets = [
        n for s in stepper.sdfg.states for n in s.nodes
        if isinstance(n, Tasklet)
    ]
    assert len(tasklets) == 1


def test_unresolvable_statement_raises():
    @orchestrate
    def bad(q):
        x = q + q  # array arithmetic between stencils is not data-centric
        _scale(x, x, 1.0, origin=(0, 0, 0), domain=SHAPE)

    with pytest.raises(OrchestrationError):
        bad.build(np.ones(SHAPE))


def test_orchestration_stats():
    mod = Module()
    q = np.zeros(SHAPE)
    out = np.zeros(SHAPE)
    call = type(mod).__dict__["__call__"].__get__(mod)
    call(q, out, 1.0)
    stats = call.sdfg.stats()
    assert stats["unique_kernels"] == 2
    assert stats["states"] >= 1
    assert stats["containers"] >= 3
