"""CLI behaviour: exit codes, output format, suppressions, targets."""

from pathlib import Path

import pytest

from repro.lint import SuppressionIndex, lint_stencil
from repro.lint.cli import main

from tests.lint import stencil_defects as defects
from tests.lint.test_dsl_rules import FIXTURE


def test_cli_fails_on_seeded_defects(capsys):
    assert main([str(FIXTURE)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "D105" in out
    assert str(FIXTURE) in out
    assert "at or above 'error'" in out


def test_cli_accepts_module_names(capsys):
    assert main(["repro.fv3.stencils.xppm"]) == 0
    assert "0 at or above 'error'" in capsys.readouterr().out


def test_cli_fv3_stencil_suite_is_clean(capsys):
    import repro

    stencils_dir = Path(repro.__file__).parent / "fv3" / "stencils"
    assert main([str(stencils_dir)]) == 0


def test_cli_unknown_target_exits_2(capsys):
    assert main(["no.such.module"]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_cli_fail_on_warning(tmp_path, capsys):
    mod = tmp_path / "warn_only.py"
    mod.write_text(
        "from repro.dsl import Field, PARALLEL, computation, interval, stencil\n"
        "\n\n@stencil\ndef w(a: Field, out: Field):\n"
        "    with computation(PARALLEL), interval(...):\n"
        "        dead = a * 3.0\n"
        "        out = a\n"
    )
    assert main([str(mod)]) == 0
    assert main([str(mod), "--fail-on", "warning"]) == 1
    out = capsys.readouterr().out
    assert "D106" in out


def test_cli_directory_skips_underscore_files(tmp_path, capsys):
    (tmp_path / "_hidden.py").write_text("raise RuntimeError('never')\n")
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0


def test_suppression_comment_silences_finding():
    findings = SuppressionIndex().apply(lint_stencil(defects.suppressed_race))
    d105 = [f for f in findings if f.rule == "D105"]
    assert len(d105) == 1 and d105[0].suppressed
    # the identical unsuppressed defect stays live
    live = SuppressionIndex().apply(lint_stencil(defects.war_race))
    assert [f.suppressed for f in live if f.rule == "D105"] == [False]


def test_cli_counts_suppressed_findings(capsys):
    main([str(FIXTURE)])
    out = capsys.readouterr().out
    # suppressed_race's D105 is counted but not failing, and hidden by
    # default
    assert "suppressed)" in out
    import re

    m = re.search(r"\((\d+) suppressed\)", out)
    assert m and int(m.group(1)) >= 1


def test_cli_show_suppressed_flag(capsys):
    main([str(FIXTURE), "--show-suppressed"])
    out = capsys.readouterr().out
    assert "(suppressed)" in out


# ---------------------------------------------------------------------------
# --comm, --scenario, --json
# ---------------------------------------------------------------------------


def test_cli_requires_some_target(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_comm_lints_module_plans(capsys):
    # the acoustic overlap plan is clean; the sequential plan's two
    # deliberate exposed windows are suppressed in-source
    assert main(["--comm", "repro.fv3.acoustics"]) == 0
    out = capsys.readouterr().out
    assert "(2 suppressed)" in out


def test_cli_comm_shows_suppressed_windows(capsys):
    main(["--comm", "--show-suppressed", "repro.fv3.acoustics"])
    out = capsys.readouterr().out
    assert "C305" in out
    assert "acoustics.substep.sequential" in out


def test_cli_without_comm_skips_plans(capsys):
    assert main(["repro.fv3.acoustics"]) == 0
    out = capsys.readouterr().out
    assert "(0 suppressed)" in out


def test_cli_comm_fails_on_buggy_plan(tmp_path, capsys):
    mod = tmp_path / "buggy_plan.py"
    mod.write_text(
        "from repro.lint.plan_ir import (CommPlan, ExchangeDecl, StartOp,\n"
        "                                FinishOp, ComputeOp, ring_edges)\n"
        "a = ExchangeDecl('a', ('u',), fslot_base=0)\n"
        "b = ExchangeDecl('b', ('v',), fslot_base=0)\n"
        "compute = ComputeOp('interior')\n"
        "plan = CommPlan.spmd('buggy', 2, (a, b),\n"
        "                     [StartOp('a'), compute, StartOp('b'),\n"
        "                      compute, FinishOp('a'), FinishOp('b')],\n"
        "                     ring_edges(2))\n"
    )
    assert main(["--comm", str(mod)]) == 1
    out = capsys.readouterr().out
    assert "C302" in out


def test_cli_json_artifact(tmp_path, capsys):
    import json

    artifact = tmp_path / "findings.json"
    assert main(
        ["--comm", "repro.fv3.acoustics", "--json", str(artifact)]
    ) == 0
    data = json.loads(artifact.read_text())
    assert data["fail_on"] == "error"
    assert data["failing"] == 0
    assert data["suppressed"] == 2
    assert {f["rule"] for f in data["findings"]} == {"C305"}
    assert all(f["suppressed"] for f in data["findings"])
    assert set(data["counts"]) == {"error", "warning", "info"}


def test_cli_scenario_discovers_registry_stencils(capsys):
    """Satellite: stencils reachable only through the scenario registry
    (built by repro.run.build_core, never imported by name here) are
    linted; the acoustic comm plans ride along via --comm."""
    assert main(
        ["--comm", "--scenario", "baroclinic_wave"]
    ) == 0
    out = capsys.readouterr().out
    assert "(2 suppressed)" in out  # found the acoustic plans


def test_cli_scenario_unknown_name_exits_2(capsys):
    assert main(["--scenario", "no_such_experiment"]) == 2
    assert "cannot lint scenario" in capsys.readouterr().err


def test_scenario_walk_reaches_stencil_modules():
    from repro.lint.cli import _reachable_repro_modules
    from repro.run.driver import build_core
    from repro.scenarios import get_scenario

    scen = get_scenario("baroclinic_wave")
    core = build_core(
        "baroclinic_wave",
        scen.default_config(npx=12, npz=4),
        executor="sequential",
    )
    try:
        mods = set(_reachable_repro_modules(core))
    finally:
        core.finalize()
        core.executor.shutdown()
    assert "repro.fv3.stencils.c_sw" in mods
    assert "repro.fv3.stencils.d_sw" in mods
    assert "repro.fv3.acoustics" in mods
