"""CLI behaviour: exit codes, output format, suppressions, targets."""

from pathlib import Path

import pytest

from repro.lint import SuppressionIndex, lint_stencil
from repro.lint.cli import main

from tests.lint import stencil_defects as defects
from tests.lint.test_dsl_rules import FIXTURE


def test_cli_fails_on_seeded_defects(capsys):
    assert main([str(FIXTURE)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "D105" in out
    assert str(FIXTURE) in out
    assert "at or above 'error'" in out


def test_cli_accepts_module_names(capsys):
    assert main(["repro.fv3.stencils.xppm"]) == 0
    assert "0 at or above 'error'" in capsys.readouterr().out


def test_cli_fv3_stencil_suite_is_clean(capsys):
    import repro

    stencils_dir = Path(repro.__file__).parent / "fv3" / "stencils"
    assert main([str(stencils_dir)]) == 0


def test_cli_unknown_target_exits_2(capsys):
    assert main(["no.such.module"]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_cli_fail_on_warning(tmp_path, capsys):
    mod = tmp_path / "warn_only.py"
    mod.write_text(
        "from repro.dsl import Field, PARALLEL, computation, interval, stencil\n"
        "\n\n@stencil\ndef w(a: Field, out: Field):\n"
        "    with computation(PARALLEL), interval(...):\n"
        "        dead = a * 3.0\n"
        "        out = a\n"
    )
    assert main([str(mod)]) == 0
    assert main([str(mod), "--fail-on", "warning"]) == 1
    out = capsys.readouterr().out
    assert "D106" in out


def test_cli_directory_skips_underscore_files(tmp_path, capsys):
    (tmp_path / "_hidden.py").write_text("raise RuntimeError('never')\n")
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0


def test_suppression_comment_silences_finding():
    findings = SuppressionIndex().apply(lint_stencil(defects.suppressed_race))
    d105 = [f for f in findings if f.rule == "D105"]
    assert len(d105) == 1 and d105[0].suppressed
    # the identical unsuppressed defect stays live
    live = SuppressionIndex().apply(lint_stencil(defects.war_race))
    assert [f.suppressed for f in live if f.rule == "D105"] == [False]


def test_cli_counts_suppressed_findings(capsys):
    main([str(FIXTURE)])
    out = capsys.readouterr().out
    # suppressed_race's D105 is counted but not failing, and hidden by
    # default
    assert "suppressed)" in out
    import re

    m = re.search(r"\((\d+) suppressed\)", out)
    assert m and int(m.group(1)) >= 1


def test_cli_show_suppressed_flag(capsys):
    main([str(FIXTURE), "--show-suppressed"])
    out = capsys.readouterr().out
    assert "(suppressed)" in out
