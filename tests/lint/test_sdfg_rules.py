"""SDFG-layer rules: seeded graph defects fire with the right rule id,
subject and source location; healthy graphs stay clean."""

from pathlib import Path

from repro.lint import lint_sdfg

from tests.lint import stencil_defects as defects
from tests.lint.graph_defects import (
    chained_sdfg,
    fuse_chained_illegally,
    merge_kernels_illegally,
    producer_consumer_sdfg,
    race_sdfg,
)
from tests.lint.test_dsl_rules import FIXTURE, mark_line, only


def test_healthy_producer_consumer_is_clean():
    assert lint_sdfg(producer_consumer_sdfg()) == []


def test_s201_kernel_race_with_overlap_evidence():
    (f,) = only(lint_sdfg(race_sdfg()), "S201")
    assert f.severity == "error"
    assert f.name == "kernel-race"
    assert "overlap" in f.message
    assert f.location.file == str(FIXTURE)
    assert f.location.line == mark_line("D105")  # same seeded read line


def test_s202_illegal_fusion_uncovered_read():
    sdfg = chained_sdfg()
    assert lint_sdfg(sdfg) == []  # extent inference covered the reads
    fuse_chained_illegally(sdfg)
    findings = only(lint_sdfg(sdfg), "S202")
    assert len(findings) == 2  # t[-1,0,0] and t[1,0,0]
    for f in findings:
        assert f.severity == "error"
        assert f.name == "uncovered-read"
        assert "illegal fusion" in f.message
        assert f.location.file == str(FIXTURE)
        assert f.location.line == mark_line("chained-read")
    # and no out-of-bounds noise: the defect is purely a coverage one
    assert not [f for f in lint_sdfg(sdfg) if f.rule == "S203"]


def test_s202_uncovered_cross_kernel_read():
    """An uncovered fringe read is flagged even across kernels: with no
    producer-domain extension the consumer genuinely reads uninitialized
    transient cells."""
    sdfg = producer_consumer_sdfg(extend_producer=False)
    pre = only(lint_sdfg(sdfg), "S202")
    assert len(pre) == 2
    merge_kernels_illegally(sdfg)
    post = only(lint_sdfg(sdfg), "S202")
    assert len(post) == 2


def test_s203_out_of_bounds_as_findings_not_exceptions():
    sdfg = producer_consumer_sdfg()
    sdfg.arrays["out"].shape = (4, 4, 4)
    findings = only(lint_sdfg(sdfg), "S203")
    assert any("exceeds container" in f.message for f in findings)
    assert all(f.severity == "error" for f in findings)


def test_s203_rank_mismatch():
    sdfg = producer_consumer_sdfg()
    sdfg.arrays["out"].shape = (10, 8)  # axes still IJK: rank mismatch
    findings = only(lint_sdfg(sdfg), "S203")
    assert any("rank mismatch" in f.message for f in findings)


def test_s204_transient_read_before_write():
    sdfg = producer_consumer_sdfg()
    state = sdfg.states[0]
    state.nodes = [state.kernels[1]]  # drop the producer
    findings = only(lint_sdfg(sdfg), "S204")
    assert all("'t'" in f.message for f in findings)
    assert findings[0].location.line == mark_line("consumer-read")


def test_s205_dead_transient():
    sdfg = producer_consumer_sdfg()
    state = sdfg.states[0]
    state.nodes = [state.kernels[0]]  # drop the consumer
    (f,) = only(lint_sdfg(sdfg), "S205")
    assert f.severity == "warning"
    assert "'t'" in f.message


def test_rules_filter():
    sdfg = producer_consumer_sdfg()
    state = sdfg.states[0]
    state.nodes = [state.kernels[0]]
    assert lint_sdfg(sdfg, rules=("S201",)) == []
    assert [f.rule for f in lint_sdfg(sdfg, rules=("S205",))] == ["S205"]


def test_loop_carried_transient_not_flagged():
    """A transient written later in a loop body is legally read earlier in
    the body on the next iteration."""
    sdfg = producer_consumer_sdfg()
    state = sdfg.states[0]
    prod, cons = state.kernels
    state.nodes = [cons, prod]  # consumer first, producer second
    assert [f.rule for f in lint_sdfg(sdfg)] == ["S204", "S204"]
    sdfg.add_loop(0, 0, 3)  # iterate the state: previous iteration wrote t
    assert lint_sdfg(sdfg) == []


def test_undeclared_callback_writes_disable_lifetime_rules():
    from repro.sdfg.nodes import Callback

    sdfg = producer_consumer_sdfg()
    state = sdfg.states[0]
    state.nodes = [state.kernels[1]]  # consumer only: S204 territory
    state.nodes.insert(0, Callback("init", lambda: None))
    assert lint_sdfg(sdfg) == []
