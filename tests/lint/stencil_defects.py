"""Seeded-defect stencils for the lint test-suite (not collected by pytest).

Each defect line carries a ``MARK:`` comment; tests locate expected line
numbers by searching for the marker, so editing this file does not break
location assertions. This module is also the CLI test target: linting it
must exit nonzero with the expected rule ids.
"""

from repro.dsl import BACKWARD, FORWARD, Field, PARALLEL, computation, interval, stencil


@stencil
def future_read(a: Field, out: Field):
    with computation(FORWARD), interval(...):
        tmp = a * 2.0
        out = tmp[0, 0, 1] + a  # MARK:D101


@stencil
def backward_future_read(a: Field, out: Field):
    with computation(BACKWARD), interval(...):
        tmp = a * 2.0
        out = tmp[0, 0, -1] + a  # MARK:D101-backward


@stencil
def war_race(a: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = a[1, 0, 0]  # MARK:D105
        a = out * 2.0


@stencil
def self_race(a: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = out[-1, 0, 0] + a  # MARK:D105-self


@stencil
def interval_gap(a: Field, out: Field):
    with computation(FORWARD):
        with interval(0, 1):
            out = a
        with interval(2, None):
            out = a + out[0, 0, -1]  # MARK:D103


@stencil
def interval_overlap(a: Field, out: Field):
    with computation(PARALLEL):
        with interval(0, 2):
            out = a
        with interval(1, None):
            out = a * 2.0  # MARK:D102


@stencil
def dead_and_unused(a: Field, out: Field, unused: Field):  # MARK:D107
    with computation(PARALLEL), interval(...):
        dead = a * 3.0  # MARK:D106
        out = a


@stencil
def suppressed_race(a: Field, out: Field):
    with computation(PARALLEL), interval(...):
        out = a[1, 0, 0]  # lint: ignore[D105]  # MARK:suppressed
        a = out * 2.0


@stencil
def producer(a: Field, t: Field):
    """Healthy producer half of the graph-defect fixtures."""
    with computation(PARALLEL), interval(...):
        t = a * 2.0


@stencil
def consumer(t: Field, out: Field):
    """Healthy consumer half of the graph-defect fixtures."""
    with computation(PARALLEL), interval(...):
        out = t[-1, 0, 0] + t[1, 0, 0]  # MARK:consumer-read


@stencil
def chained(a: Field, out: Field):
    """Healthy two-computation chain: extent inference enlarges the
    producer so the consumer's offset reads are covered."""
    with computation(PARALLEL), interval(...):
        t = a * 2.0
    with computation(PARALLEL), interval(...):
        out = t[-1, 0, 0] + t[1, 0, 0]  # MARK:chained-read


@stencil
def carried_solver(q: Field, out: Field):
    """Healthy FORWARD solver: the carried read must produce no finding."""
    with computation(FORWARD):
        with interval(0, 1):
            out = q
        with interval(1, None):
            out = 0.5 * (out[0, 0, -1] + q)
