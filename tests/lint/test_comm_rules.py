"""C3xx communication-protocol rules over CommPlans.

The regression that motivates this layer is PR 5's cross-thread repack
race: two split exchanges in flight at once on the same ``fslot_base``
tag slots, so one exchange's repack could consume the other's messages.
That bug class is now a static error (C302) caught before a single
message is posted, and the seeded-deadlock / asymmetric-schedule
variants are caught the same way.
"""

import pytest

from repro.fv3.halo import HaloUpdater
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.lint import (
    CommPlan,
    ComputeOp,
    ExchangeDecl,
    SuppressionIndex,
    lint_comm_plan,
    max_severity,
)
from repro.lint.plan_ir import (
    AdvanceOp,
    FinishOp,
    StartOp,
    halo_extent,
    ring_edges,
)


def _rules(findings):
    return sorted(f.rule for f in findings)


def _errors(findings):
    return [f for f in findings if f.severity == "error"]


def _spmd(program, exchanges, n_ranks=2, name="plan"):
    return CommPlan.spmd(
        name, n_ranks, exchanges, program, ring_edges(n_ranks)
    )


EX_A = ExchangeDecl("a", ("u",), fslot_base=0)
EX_B = ExchangeDecl("b", ("v",), fslot_base=1)
COMPUTE = ComputeOp("interior", reads={}, writes={})


# ---------------------------------------------------------------------------
# C301 — send/recv matching
# ---------------------------------------------------------------------------


def test_clean_start_finish_pair_passes():
    plan = _spmd([StartOp("a"), COMPUTE, FinishOp("a")], (EX_A,))
    assert lint_comm_plan(plan) == []


def test_undeclared_exchange_is_c301():
    plan = _spmd([StartOp("ghost"), COMPUTE, FinishOp("ghost")], (EX_A,))
    findings = _errors(lint_comm_plan(plan))
    assert _rules(findings) == ["C301", "C301"]
    assert "undeclared exchange" in findings[0].message


def test_started_never_finished_is_c301():
    plan = _spmd([StartOp("a"), COMPUTE], (EX_A,))
    (f,) = _errors(lint_comm_plan(plan))
    assert f.rule == "C301"
    assert "never finished" in f.message


def test_finish_without_start_is_c301():
    plan = _spmd([FinishOp("a")], (EX_A,))
    (f,) = _errors(lint_comm_plan(plan))
    assert f.rule == "C301"
    assert "not in flight" in f.message


def test_double_start_is_c301():
    plan = _spmd(
        [StartOp("a"), COMPUTE, StartOp("a"), FinishOp("a")], (EX_A,)
    )
    findings = _errors(lint_comm_plan(plan, rules=("C301",)))
    assert findings and all(f.rule == "C301" for f in findings)


def test_advance_without_start_is_c301():
    plan = _spmd([AdvanceOp("a")], (EX_A,))
    findings = _errors(lint_comm_plan(plan, rules=("C301",)))
    assert findings and "advance" in findings[0].message


def test_asymmetric_starter_is_c301():
    # rank 1 participates in the ring topology but never runs the
    # exchange: rank 0's receives from it can only time out
    plan = CommPlan(
        "asym",
        2,
        (EX_A,),
        ((StartOp("a"), COMPUTE, FinishOp("a")), (COMPUTE,)),
        ring_edges(2),
    )
    findings = _errors(lint_comm_plan(plan, rules=("C301",)))
    assert len(findings) == 1
    assert "rank 1 never starts exchange 'a'" in findings[0].message


# ---------------------------------------------------------------------------
# C302 — tag-slot collisions (the PR-5 repack race, as a regression)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def halo():
    return HaloUpdater(CubedSpherePartitioner(12, 1), n_halo=3)


def _acoustic_like_program():
    """The overlap sub-step's op order: winds and scalars concurrently
    in flight, compute inside both windows."""
    return (
        StartOp("winds"),
        ComputeOp("riemann", reads={}, writes={}),
        StartOp("scalars"),
        AdvanceOp("winds"),
        AdvanceOp("scalars"),
        FinishOp("winds"),
        ComputeOp("c_sw", reads={}, writes={}),
        FinishOp("scalars"),
    )


def test_pr5_repack_race_is_c302_error(halo):
    """Regression: PR 5's cross-thread repack race was exactly this —
    the scalar exchange flying on the same tag slots as the in-flight
    wind exchange, so one exchange's repack consumed the other's
    messages. The buggy slot assignment must be a static error."""
    winds = ExchangeDecl("winds", ("u", "v"), fslot_base=0, vector=True)
    scalars = ExchangeDecl(
        "scalars", ("delp", "pt", "w"), fslot_base=0  # the bug
    )
    plan = CommPlan.spmd(
        "acoustics.buggy",
        halo.partitioner.total_ranks,
        (winds, scalars),
        _acoustic_like_program(),
        halo.comm_schedule(),
    )
    findings = [f for f in lint_comm_plan(plan) if f.rule == "C302"]
    assert len(findings) == 1
    assert findings[0].severity == "error"
    assert "tag slot" in findings[0].message


def test_disjoint_fslots_have_no_c302(halo):
    """The shipped fix: scalars on fslot_base=2, past the two wind
    slots."""
    winds = ExchangeDecl("winds", ("u", "v"), fslot_base=0, vector=True)
    scalars = ExchangeDecl("scalars", ("delp", "pt", "w"), fslot_base=2)
    plan = CommPlan.spmd(
        "acoustics.fixed",
        halo.partitioner.total_ranks,
        (winds, scalars),
        _acoustic_like_program(),
        halo.comm_schedule(),
    )
    assert not [f for f in lint_comm_plan(plan) if f.rule == "C302"]


def test_sequential_windows_reuse_slots_without_c302():
    # same fslot_base is fine when the windows never overlap in time
    ex_b0 = ExchangeDecl("b", ("v",), fslot_base=0)
    plan = _spmd(
        [StartOp("a"), COMPUTE, FinishOp("a"),
         StartOp("b"), COMPUTE, FinishOp("b")],
        (EX_A, ex_b0),
    )
    assert lint_comm_plan(plan) == []


# ---------------------------------------------------------------------------
# C303 — deadlock
# ---------------------------------------------------------------------------


def test_seeded_deadlock_is_flagged_before_execution():
    """Two ranks running the exchanges in opposite order: each blocks in
    its first finish waiting for a send the other only posts after its
    own first finish — the classic cyclic wait, caught statically."""
    p0 = (StartOp("a"), COMPUTE, FinishOp("a"),
          StartOp("b"), COMPUTE, FinishOp("b"))
    p1 = (StartOp("b"), COMPUTE, FinishOp("b"),
          StartOp("a"), COMPUTE, FinishOp("a"))
    plan = CommPlan("dead", 2, (EX_A, EX_B), (p0, p1), ring_edges(2))
    findings = [f for f in lint_comm_plan(plan) if f.rule == "C303"]
    assert len(findings) == 1
    assert findings[0].severity == "error"
    assert "deadlock" in findings[0].message


def test_spmd_schedule_never_deadlocks():
    plan = _spmd(
        [StartOp("a"), COMPUTE, FinishOp("a"),
         StartOp("b"), COMPUTE, FinishOp("b")],
        (EX_A, EX_B),
        n_ranks=4,
    )
    assert not [f for f in lint_comm_plan(plan) if f.rule == "C303"]


def test_pipelined_advance_order_is_deadlock_free():
    plan = _spmd(list(_acoustic_like_program()), (
        ExchangeDecl("winds", ("u", "v"), fslot_base=0, vector=True),
        ExchangeDecl("scalars", ("delp", "pt", "w"), fslot_base=2),
    ), n_ranks=4)
    assert not [f for f in lint_comm_plan(plan) if f.rule == "C303"]


# ---------------------------------------------------------------------------
# C304 / C305 — overlap windows
# ---------------------------------------------------------------------------


def test_halo_read_of_in_flight_field_is_c304_error():
    op = ComputeOp("stencil", reads={"u": halo_extent(1)}, writes={})
    plan = _spmd([StartOp("a"), op, FinishOp("a")], (EX_A,))
    (f,) = _errors(lint_comm_plan(plan))
    assert f.rule == "C304"
    assert "reads the halo" in f.message


def test_halo_write_of_in_flight_field_is_c304_error():
    op = ComputeOp("stencil", reads={}, writes={"u": halo_extent(2)})
    plan = _spmd([StartOp("a"), op, FinishOp("a")], (EX_A,))
    (f,) = _errors(lint_comm_plan(plan))
    assert f.rule == "C304"


def test_interior_write_of_in_flight_field_is_c304_warning():
    # the scatter only touches halo cells, so an interior write does not
    # corrupt the exchange — but it is fragile enough to warn about
    op = ComputeOp("stencil", reads={}, writes={"u": halo_extent(0)})
    plan = _spmd([StartOp("a"), op, FinishOp("a")], (EX_A,))
    findings = [f for f in lint_comm_plan(plan) if f.rule == "C304"]
    assert len(findings) == 1
    assert findings[0].severity == "warning"


def test_compute_outside_window_is_clean():
    op = ComputeOp("stencil", reads={"u": halo_extent(3)},
                   writes={"u": halo_extent(0)})
    plan = _spmd(
        [StartOp("a"), COMPUTE, FinishOp("a"), op], (EX_A,)
    )
    assert lint_comm_plan(plan) == []


def test_empty_window_is_c305_warning():
    plan = _spmd([StartOp("a"), FinishOp("a"), COMPUTE], (EX_A,))
    (f,) = lint_comm_plan(plan)
    assert (f.rule, f.severity) == ("C305", "warning")


def test_rule_filter_limits_output():
    plan = _spmd([StartOp("a"), FinishOp("a")], (EX_A,))
    assert _rules(lint_comm_plan(plan)) == ["C305"]
    assert lint_comm_plan(plan, rules=("C304",)) == []


# ---------------------------------------------------------------------------
# The shipped acoustic plans (acceptance)
# ---------------------------------------------------------------------------


def test_acoustic_overlap_plan_is_clean():
    from repro.fv3.acoustics import acoustic_comm_plan

    plan = acoustic_comm_plan(overlap=True)
    assert lint_comm_plan(plan) == []


def test_acoustic_sequential_plan_has_only_suppressed_c305():
    from repro.fv3.acoustics import acoustic_comm_plan

    plan = acoustic_comm_plan(overlap=False)
    findings = SuppressionIndex().apply(lint_comm_plan(plan))
    assert findings, "expected the two deliberate exposed windows"
    assert all(f.rule == "C305" and f.suppressed for f in findings)
    assert max_severity(findings) is None


@pytest.mark.parametrize("executor", ["sequential", "threads"])
def test_core_acoustic_plan_has_no_errors_on_any_executor(executor):
    """The real core's declared schedule is error-free however it is
    executed: the overlap (threaded) and sequential orderings both
    verify against the core's own halo topology."""
    from repro.run.driver import build_core
    from repro.scenarios import get_scenario

    scen = get_scenario("baroclinic_wave")
    core = build_core(
        "baroclinic_wave",
        scen.default_config(npx=12, npz=4),
        executor=executor,
        workers=2,
    )
    try:
        for overlap in (True, False):
            plan = core.acoustics.comm_plan(overlap=overlap)
            findings = SuppressionIndex().apply(lint_comm_plan(plan))
            assert max_severity(findings) is None
    finally:
        core.finalize()
        core.executor.shutdown()
