"""LintFinding mechanics: severities, ordering, keys, suppressions."""

import pytest

from repro.lint import (
    LintFinding,
    SEVERITIES,
    SuppressionIndex,
    max_severity,
    parse_suppressions,
    sort_findings,
)
from repro.util.loc import SourceLocation


def _f(rule="D101", severity="error", line=10, **kw):
    kw.setdefault("name", "some-rule")
    kw.setdefault("subject", "stencil")
    kw.setdefault("message", "msg")
    return LintFinding(
        rule=rule,
        severity=severity,
        location=SourceLocation("file.py", line),
        **kw,
    )


def test_severities_are_ordered_most_severe_first():
    assert SEVERITIES == ("error", "warning", "info")


def test_unknown_severity_rejected():
    with pytest.raises(ValueError, match="unknown severity"):
        _f(severity="fatal")


def test_sort_by_severity_then_location():
    a = _f(severity="warning", line=1)
    b = _f(severity="error", line=99)
    c = _f(severity="error", line=2)
    assert sort_findings([a, b, c]) == [c, b, a]


def test_max_severity_ignores_suppressed():
    assert max_severity([]) is None
    assert max_severity([_f(severity="warning")]) == "warning"
    assert (
        max_severity([_f(severity="warning"), _f(severity="error")])
        == "error"
    )
    import dataclasses

    silenced = dataclasses.replace(_f(severity="error"), suppressed=True)
    assert max_severity([silenced, _f(severity="warning")]) == "warning"


def test_key_excludes_message():
    a = _f(message="range [0:3]")
    b = _f(message="range [0:9]")
    assert a.key() == b.key()


def test_str_contains_location_rule_and_subject():
    text = str(_f())
    assert "file.py:10" in text
    assert "D101" in text
    assert "stencil" in text


def test_parse_suppressions():
    src = "x = 1\ny = 2  # lint: ignore[D101, S201]\nz = 3  # lint: ignore[*]\n"
    sup = parse_suppressions(src)
    assert sup == {2: {"D101", "S201"}, 3: {"*"}}


def test_suppression_index_applies_by_file_and_line(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("a = 1\nb = 2  # lint: ignore[D105]\n")
    idx = SuppressionIndex()
    hit = _f(rule="D105", line=2)
    hit = LintFinding(
        rule="D105",
        name="r",
        severity="error",
        subject="s",
        message="m",
        location=SourceLocation(str(path), 2),
    )
    miss_rule = LintFinding(
        rule="D101",
        name="r",
        severity="error",
        subject="s",
        message="m",
        location=SourceLocation(str(path), 2),
    )
    miss_line = LintFinding(
        rule="D105",
        name="r",
        severity="error",
        subject="s",
        message="m",
        location=SourceLocation(str(path), 1),
    )
    out = idx.apply([hit, miss_rule, miss_line])
    assert [f.suppressed for f in out] == [True, False, False]


def test_wildcard_suppression(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("a = 1  # lint: ignore[*]\n")
    f = LintFinding(
        rule="S203",
        name="r",
        severity="error",
        subject="s",
        message="m",
        location=SourceLocation(str(path), 1),
    )
    assert SuppressionIndex().apply([f])[0].suppressed


def test_unknown_location_never_suppressed():
    f = LintFinding(
        rule="S203", name="r", severity="error", subject="s", message="m"
    )
    assert not SuppressionIndex().apply([f])[0].suppressed


# ---------------------------------------------------------------------------
# Rule registry, family wildcards, unknown-rule warnings
# ---------------------------------------------------------------------------


def test_registry_knows_every_rule_family():
    from repro.lint import (
        COMM_RULES,
        DSL_RULES,
        KNOWN_RULES,
        RUNTIME_RULES,
        SDFG_RULES,
    )

    for catalog in (DSL_RULES, SDFG_RULES, COMM_RULES, RUNTIME_RULES):
        for rule, name in catalog.items():
            assert KNOWN_RULES[rule] == name
    assert {"D101", "S201", "C301", "C302", "C303", "R401"} <= set(
        KNOWN_RULES
    )


def _finding_at(path, line, rule):
    return LintFinding(
        rule=rule,
        name="r",
        severity="error",
        subject="s",
        message="m",
        location=SourceLocation(str(path), line),
    )


def test_family_wildcard_suppresses_whole_family(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("a = 1  # lint: ignore[C3*]\n")
    c301 = _finding_at(path, 1, "C301")
    c305 = _finding_at(path, 1, "C305")
    r401 = _finding_at(path, 1, "R401")
    out = SuppressionIndex().apply([c301, c305, r401])
    assert [f.suppressed for f in out] == [True, True, False]


def test_comm_and_runtime_ids_suppress_exactly(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("a = 1  # lint: ignore[C302, R404]\n")
    out = SuppressionIndex().apply(
        [
            _finding_at(path, 1, "C302"),
            _finding_at(path, 1, "C303"),
            _finding_at(path, 1, "R404"),
        ]
    )
    assert [f.suppressed for f in out] == [True, False, True]


def test_unknown_rule_id_in_suppression_warns(tmp_path):
    from repro.lint import UnknownRuleWarning

    path = tmp_path / "mod.py"
    path.write_text("a = 1  # lint: ignore[C999]\n")
    with pytest.warns(UnknownRuleWarning, match=r"C999"):
        SuppressionIndex().apply([_finding_at(path, 1, "C301")])


def test_unknown_family_prefix_warns_but_known_one_does_not(tmp_path):
    import warnings as _warnings

    from repro.lint import UnknownRuleWarning

    path = tmp_path / "mod.py"
    path.write_text("a = 1  # lint: ignore[C3*]\nb = 2  # lint: ignore[Z9*]\n")
    with pytest.warns(UnknownRuleWarning, match=r"Z9\*"):
        SuppressionIndex().apply([_finding_at(path, 1, "C301")])
    path2 = tmp_path / "clean.py"
    path2.write_text("a = 1  # lint: ignore[C3*, *]\n")
    with _warnings.catch_warnings():
        _warnings.simplefilter("error", UnknownRuleWarning)
        SuppressionIndex().apply([_finding_at(path2, 1, "C301")])


def test_register_rules_extends_registry():
    import repro.lint.findings as findings_mod
    from repro.lint import register_rules

    register_rules({"X901": "made-up"})
    try:
        assert findings_mod._pattern_is_known("X901")
        assert findings_mod._pattern_is_known("X9*")
    finally:
        findings_mod.KNOWN_RULES.pop("X901", None)
