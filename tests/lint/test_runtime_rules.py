"""R4xx buffer-lifetime rules: synthetic traces, live pool recording,
and compiled-plan replay."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.lint import (
    BufferEvent,
    lint_buffer_events,
    lint_compiled_plan,
    record_buffer_events,
)
from repro.runtime.pool import BufferPool

from tests.lint.graph_defects import SHAPE, chained_sdfg


def _rules(findings):
    return sorted(f.rule for f in findings)


# ---------------------------------------------------------------------------
# Synthetic traces
# ---------------------------------------------------------------------------


def test_balanced_trace_is_clean():
    events = [
        BufferEvent("acquire", 1),
        BufferEvent("use", 1, label="kernel"),
        BufferEvent("release", 1),
    ]
    assert lint_buffer_events(events) == []


def test_use_after_release_is_r401():
    events = [
        BufferEvent("acquire", 1),
        BufferEvent("release", 1),
        BufferEvent("use", 1, label="stencil:x"),
    ]
    (f,) = lint_buffer_events(events)
    assert (f.rule, f.severity) == ("R401", "error")
    assert "stencil:x" in f.message


def test_bind_after_release_is_r401():
    events = [
        BufferEvent("acquire", 1),
        BufferEvent("release", 1),
        BufferEvent("bind", 1, label="sdfg:prog:out"),
    ]
    (f,) = lint_buffer_events(events)
    assert f.rule == "R401"
    assert "kernel destination" in f.message


def test_double_acquire_is_r402():
    events = [
        BufferEvent("acquire", 1, label="a"),
        BufferEvent("acquire", 1, label="b"),
        BufferEvent("release", 1),
    ]
    (f,) = lint_buffer_events(events)
    assert (f.rule, f.severity) == ("R402", "error")
    assert "acquired twice" in f.message


def test_double_release_is_r402():
    events = [
        BufferEvent("acquire", 1),
        BufferEvent("release", 1),
        BufferEvent("release", 1),
    ]
    (f,) = lint_buffer_events(events)
    assert f.rule == "R402"
    assert "released twice" in f.message


def test_release_without_acquire_is_r402():
    (f,) = lint_buffer_events([BufferEvent("release", 7)])
    assert f.rule == "R402"
    assert "without ever being acquired" in f.message


def test_leak_is_r403_warning_unless_allowed():
    events = [BufferEvent("acquire", 1, label="scope")]
    (f,) = lint_buffer_events(events)
    assert (f.rule, f.severity) == ("R403", "warning")
    assert lint_buffer_events(events, allow_live_at_end=True) == []


def test_foreign_bind_of_live_buffer_is_r404():
    events = [
        BufferEvent("acquire", 1, label="owner", rank=0),
        BufferEvent("bind", 1, label="sdfg:prog:out", rank=0),
        BufferEvent("release", 1),
    ]
    (f,) = lint_buffer_events(events)
    assert (f.rule, f.severity) == ("R404", "error")
    assert "sdfg:prog:out" in f.message


def test_same_owner_bind_is_clean():
    events = [
        BufferEvent("acquire", 1, label="x", rank=2),
        BufferEvent("bind", 1, label="x", rank=2),
        BufferEvent("release", 1),
    ]
    assert lint_buffer_events(events) == []


def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError, match="unknown buffer event"):
        lint_buffer_events([BufferEvent("frob", 1)])


# ---------------------------------------------------------------------------
# Live pool recording
# ---------------------------------------------------------------------------


def test_recorder_sees_checkout_release_pairs():
    pool = BufferPool()
    with record_buffer_events(pool) as events:
        a = pool.checkout((4, 4), np.float64)
        pool.release(a)
    assert [e.kind for e in events] == ["acquire", "release"]
    assert events[0].buffer == id(a)
    assert events[0].key == ((4, 4), "<f8")
    assert lint_buffer_events(events) == []


def test_recorder_catches_leak_and_use_after_release():
    pool = BufferPool()
    with record_buffer_events(pool) as events:
        a = pool.checkout((4, 4), np.float64)
        b = pool.checkout((2, 2), np.float64)
        pool.release(a)
        pool.note("use", a, label="late-reader")
        del b  # never released
    assert _rules(lint_buffer_events(events)) == ["R401", "R403"]


def test_recorder_detaches_after_block():
    pool = BufferPool()
    with record_buffer_events(pool) as events:
        pool.release(pool.checkout((2, 2), np.float64))
    n = len(events)
    pool.release(pool.checkout((2, 2), np.float64))
    assert len(events) == n
    assert pool._recorder is None


def test_note_is_noop_without_recorder():
    pool = BufferPool()
    buf = pool.checkout((2, 2), np.float64)
    pool.note("use", buf)  # must not raise or record anything
    pool.release(buf)


# ---------------------------------------------------------------------------
# Compiled plans
# ---------------------------------------------------------------------------


def _fake_compiled(events, specs):
    plan = SimpleNamespace(events=list(events), specs=list(specs))
    return SimpleNamespace(
        sdfg=SimpleNamespace(name="prog"),
        _plan=plan,
        plan_events=tuple(plan.events),
    )


def test_compiled_plan_replay_clean():
    compiled = _fake_compiled(
        [("alloc", 0), ("free", 0), ("alloc", 0), ("free", 0)],
        [((4, 4), np.dtype("f8"))],
    )
    assert lint_compiled_plan(compiled) == []


def test_compiled_plan_double_free_is_r402():
    compiled = _fake_compiled(
        [("alloc", 0), ("free", 0), ("free", 0)],
        [((4, 4), np.dtype("f8"))],
    )
    (f,) = lint_compiled_plan(compiled)
    assert f.rule == "R402"
    assert f.subject == "sdfg:prog"
    assert "slot 0" in f.message


def test_compiled_plan_slots_live_at_end_are_expected():
    # kernel-local slots are owned for the whole program body, so a
    # trailing live slot is by design, not a leak
    compiled = _fake_compiled(
        [("alloc", 0)], [((4, 4), np.dtype("f8"))]
    )
    assert lint_compiled_plan(compiled) == []


def test_real_compiled_sdfg_plan_is_clean():
    from repro.sdfg.codegen import compile_sdfg

    compiled = compile_sdfg(chained_sdfg())
    assert lint_compiled_plan(compiled) == []


def test_live_pooled_scratch_as_sdfg_destination_is_r404():
    """The end-to-end aliasing scenario: a caller checks out pooled
    scratch and passes it to a compiled program as an output — the
    program's out=-scheduled writes now alias pool-owned storage."""
    from repro.runtime.pool import get_pool
    from repro.sdfg.codegen import compile_sdfg

    compiled = compile_sdfg(chained_sdfg())
    pool = get_pool()
    a = np.ones(SHAPE)
    with record_buffer_events(pool) as events:
        scratch = pool.checkout(SHAPE, np.float64)
        compiled({"a": a, "out": scratch})
        pool.release(scratch)
    findings = [
        f for f in lint_buffer_events(events) if f.rule == "R404"
    ]
    assert len(findings) == 1
    assert "sdfg:prog:out" in findings[0].message


def test_dedicated_output_array_has_no_r404():
    from repro.runtime.pool import get_pool
    from repro.sdfg.codegen import compile_sdfg

    compiled = compile_sdfg(chained_sdfg())
    pool = get_pool()
    a, out = np.ones(SHAPE), np.zeros(SHAPE)
    with record_buffer_events(pool) as events:
        compiled({"a": a, "out": out})
    assert lint_buffer_events(events) == []
