"""Transformation-safety audit: new violations are attributed to the
stage that introduced them, and the pipeline validates at entry/exit."""

import pytest

from repro.core.pipeline import OptimizationPipeline, PipelineOptions
from repro.lint import TransformationAudit
from repro.sdfg.validation import SDFGValidationError

from tests.lint.graph_defects import (
    chained_sdfg,
    fuse_chained_illegally,
    producer_consumer_sdfg,
)


def test_audit_attributes_new_findings_to_stage():
    sdfg = chained_sdfg()
    audit = TransformationAudit()
    assert audit.start(sdfg) == []
    fuse_chained_illegally(sdfg)
    new = audit.check(sdfg, "evil-fusion")
    assert [f.rule for f in new] == ["S202", "S202"]
    assert list(audit.by_stage) == ["evil-fusion"]
    assert [s for s, _ in audit.introduced] == ["evil-fusion", "evil-fusion"]


def test_audit_reports_each_finding_once():
    sdfg = chained_sdfg()
    audit = TransformationAudit()
    audit.start(sdfg)
    fuse_chained_illegally(sdfg)
    assert len(audit.check(sdfg, "first")) == 2
    assert audit.check(sdfg, "second") == []
    assert "second" not in audit.by_stage


def test_audit_baseline_findings_not_charged_to_any_stage():
    sdfg = chained_sdfg()
    fuse_chained_illegally(sdfg)  # broken before the audit starts
    audit = TransformationAudit()
    baseline = audit.start(sdfg)
    assert [f.rule for f in baseline] == ["S202", "S202"]
    assert audit.check(sdfg, "stage") == []
    assert audit.summary() == "transformation audit: no new findings"


def test_audit_summary_names_stage_and_rule():
    sdfg = chained_sdfg()
    audit = TransformationAudit()
    audit.start(sdfg)
    fuse_chained_illegally(sdfg)
    audit.check(sdfg, "bad-stage")
    text = audit.summary()
    assert "bad-stage" in text and "S202" in text


def test_pipeline_attributes_findings_to_hook_stage():
    sdfg = chained_sdfg()
    pipeline = OptimizationPipeline(
        PipelineOptions(fine_tune_hooks=[fuse_chained_illegally])
    )
    stages = pipeline.run(sdfg)
    by_name = {s.name: s for s in stages}
    hook_stage = by_name["Lagrangian contrib. reschedule"]
    assert [f.rule for f in hook_stage.lint_findings] == ["S202", "S202"]
    # every stage before the hook stayed clean
    for name in (
        "GT4Py + DaCe (Default)",
        "Stencil schedule heuristics",
        "Local caching",
    ):
        assert by_name[name].lint_findings == []
    assert pipeline.audit is not None
    assert list(pipeline.audit.by_stage) == ["Lagrangian contrib. reschedule"]


def test_pipeline_audit_can_be_disabled():
    sdfg = chained_sdfg()
    pipeline = OptimizationPipeline(
        PipelineOptions(
            lint_audit=False, fine_tune_hooks=[fuse_chained_illegally]
        )
    )
    stages = pipeline.run(sdfg)
    assert pipeline.audit is None
    assert all(s.lint_findings == [] for s in stages)


def test_pipeline_validates_at_entry():
    sdfg = producer_consumer_sdfg()
    del sdfg.arrays["out"]
    with pytest.raises(SDFGValidationError, match="unknown container"):
        OptimizationPipeline().run(sdfg)


def test_pipeline_validates_after_final_stage():
    sdfg = producer_consumer_sdfg()

    def corrupt(sd):
        sd.arrays["out"].shape = (10, 8, 2)  # K now too small

    pipeline = OptimizationPipeline(PipelineOptions(fine_tune_hooks=[corrupt]))
    with pytest.raises(SDFGValidationError, match="exceeds container"):
        pipeline.run(sdfg)
    # the stages up to the corruption were still recorded
    assert any(s.name == "Region pruning" for s in pipeline.stages)


# ---------------------------------------------------------------------------
# Comm-plan attribution
# ---------------------------------------------------------------------------


def _window_plan():
    from repro.lint.plan_ir import (
        CommPlan,
        ComputeOp,
        ExchangeDecl,
        FinishOp,
        StartOp,
        ring_edges,
    )

    return CommPlan.spmd(
        "audit-plan",
        2,
        (ExchangeDecl("ex", ("u",)),),
        [StartOp("ex"), ComputeOp("work"), FinishOp("ex")],
        ring_edges(2),
    )


def test_audit_lints_attached_comm_plan_as_is():
    from repro.lint.plan_ir import halo_extent

    plan = _window_plan()
    # a halo read already baked into the plan is a baseline finding
    import dataclasses

    op = plan.programs[0][1]
    plan = plan.with_compute(
        "work", dataclasses.replace(op, reads={"u": halo_extent(1)})
    )
    audit = TransformationAudit(comm_plan=plan)
    baseline = audit.start(chained_sdfg())
    assert [f.rule for f in baseline] == ["C304"]
    assert audit.check(chained_sdfg(), "stage") == []


def test_audit_charges_comm_finding_to_enlarging_stage():
    """The audit re-derives the window op's footprints from the current
    SDFG: a stage that enlarges a read into the halo of the in-flight
    field gets the C304 charged to it."""
    fused = chained_sdfg()
    fuse_chained_illegally(fused)  # zero-extent reads: window is safe
    audit = TransformationAudit(
        comm_plan=_window_plan(),
        comm_op="work",
        comm_rename={"a": "u"},
    )
    baseline = audit.start(fused)
    assert not [f for f in baseline if f.rule.startswith("C")]
    # "transformation" restores the enlarged producer reads of `a`
    new = audit.check(chained_sdfg(), "halo-recompute")
    comm = [f for f in new if f.rule == "C304"]
    assert len(comm) == 1
    assert comm[0].severity == "error"
    assert "'u'" in comm[0].message
    assert any(f.rule == "C304" for f in audit.by_stage["halo-recompute"])
