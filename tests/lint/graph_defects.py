"""SDFG builders with (and without) seeded graph-level defects.

Shared by the SDFG-rule tests and the transformation-audit tests.
"""

from repro.dsl.extents import Extent
from repro.sdfg import SDFG
from repro.sdfg.nodes import KernelSection, StencilComputation

from tests.lint import stencil_defects as defects

SHAPE = (10, 8, 4)
DOMAIN = (8, 6, 4)
ORIGIN = (1, 1, 0)


def producer_consumer_sdfg(extend_producer: bool = True) -> SDFG:
    """producer (a -> t, transient) then consumer (t[-1]/t[+1] -> out).

    With ``extend_producer`` the producer domain is widened by one point in
    i, covering the consumer's offset reads (the healthy configuration).
    Without it the program is still in-bounds but the consumer's reads are
    not covered by what the producer writes — the precondition an illegal
    fusion violates.
    """
    sdfg = SDFG("prog")
    sdfg.add_array("a", SHAPE)
    sdfg.add_array("out", SHAPE)
    sdfg.add_transient("t", SHAPE)
    state = sdfg.add_state("s0")
    if extend_producer:
        prod_domain = (DOMAIN[0] + 2, DOMAIN[1], DOMAIN[2])
        prod_origin = (ORIGIN[0] - 1, ORIGIN[1], ORIGIN[2])
    else:
        prod_domain, prod_origin = DOMAIN, ORIGIN
    state.add(
        StencilComputation(
            defects.producer.definition,
            defects.producer.extents,
            mapping={"a": "a", "t": "t"},
            domain=prod_domain,
            origin=prod_origin,
        )
    )
    state.add(
        StencilComputation(
            defects.consumer.definition,
            defects.consumer.extents,
            mapping={"t": "t", "out": "out"},
            domain=DOMAIN,
            origin=ORIGIN,
        )
    )
    sdfg.expand_library_nodes()
    return sdfg


def merge_kernels_illegally(sdfg: SDFG) -> None:
    """Glue the consumer's sections onto the producer kernel without
    enlarging producer extents — the seeded illegal fusion."""
    state = sdfg.states[0]
    prod, cons = state.kernels
    prod.sections = prod.sections + cons.sections
    prod.constituents = prod.constituents + cons.constituents
    state.nodes = [n for n in state.nodes if n is not cons]


def chained_sdfg() -> SDFG:
    """Healthy two-kernel chain from one stencil: extent inference made
    the producer write a superset of the consumer's offset reads."""
    sdfg = SDFG("prog")
    sdfg.add_array("a", SHAPE)
    sdfg.add_array("out", SHAPE)
    state = sdfg.add_state("s0")
    state.add(
        StencilComputation(
            defects.chained.definition,
            defects.chained.extents,
            mapping={"a": "a", "out": "out"},
            domain=DOMAIN,
            origin=ORIGIN,
        )
    )
    sdfg.expand_library_nodes()
    return sdfg


def fuse_chained_illegally(sdfg: SDFG) -> None:
    """Merge the chain into one kernel AND drop the producer's extent
    enlargement — the real shape of an illegal fusion: producers are no
    longer recomputed over the consumer's read halo."""
    state = sdfg.states[0]
    prod, cons = state.kernels
    prod.sections = [
        KernelSection(
            sec.interval, [(stmt, Extent.zero()) for stmt, _ in sec.statements]
        )
        for sec in prod.sections
    ] + cons.sections
    prod.constituents = prod.constituents + cons.constituents
    state.nodes = [n for n in state.nodes if n is not cons]


def race_sdfg() -> SDFG:
    """One kernel with a write-after-read offset hazard (from war_race)."""
    sdfg = SDFG("race")
    sdfg.add_array("a", SHAPE)
    sdfg.add_array("out", SHAPE)
    state = sdfg.add_state("s0")
    state.add(
        StencilComputation(
            defects.war_race.definition,
            defects.war_race.extents,
            mapping={"a": "a", "out": "out"},
            domain=DOMAIN,
            origin=ORIGIN,
        )
    )
    sdfg.expand_library_nodes()
    return sdfg
