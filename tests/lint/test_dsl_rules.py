"""DSL-layer rules: every seeded defect fires with the right id, severity
and source location; the healthy FV3 stencil suite stays clean."""

from pathlib import Path

import pytest

from repro.dsl.extents import compute_extents
from repro.lint import lint_stencil

from tests.lint import stencil_defects as defects

FIXTURE = Path(defects.__file__).resolve()


def mark_line(marker: str) -> int:
    tag = f"MARK:{marker}"
    for lineno, line in enumerate(FIXTURE.read_text().splitlines(), 1):
        if line.rstrip().endswith(tag):
            return lineno
    raise AssertionError(f"no line tagged {tag}")


def only(findings, rule):
    hits = [f for f in findings if f.rule == rule]
    assert hits, f"expected a {rule} finding, got {findings}"
    return hits


def test_d101_future_level_read_forward():
    (f,) = only(lint_stencil(defects.future_read), "D101")
    assert f.severity == "error"
    assert f.name == "read-before-write"
    assert "tmp" in f.message and "FORWARD" in f.message
    assert f.location.file == str(FIXTURE)
    assert f.location.line == mark_line("D101")


def test_d101_future_level_read_backward():
    (f,) = only(lint_stencil(defects.backward_future_read), "D101")
    assert f.location.line == mark_line("D101-backward")


def test_d102_interval_overlap():
    (f,) = only(lint_stencil(defects.interval_overlap), "D102")
    assert f.severity == "warning"
    assert "'out'" in f.message
    assert f.location.line == mark_line("D102")


def test_d103_interval_gap():
    (f,) = only(lint_stencil(defects.interval_gap), "D103")
    assert f.severity == "warning"
    assert f.location.line == mark_line("D103")


def test_d104_stale_extents():
    stale = compute_extents(defects.dead_and_unused.definition)
    findings = lint_stencil(defects.war_race.definition, extents=stale)
    assert only(findings, "D104")[0].severity == "error"


def test_d104_silent_when_extents_match():
    findings = lint_stencil(defects.carried_solver)
    assert not [f for f in findings if f.rule == "D104"]


def test_d105_war_race():
    (f,) = only(lint_stencil(defects.war_race), "D105")
    assert f.severity == "error"
    assert "(1, 0, 0)" in f.message
    assert f.location.line == mark_line("D105")


def test_d105_same_statement_self_race():
    (f,) = only(lint_stencil(defects.self_race), "D105")
    assert f.location.line == mark_line("D105-self")


def test_d106_dead_store():
    (f,) = only(lint_stencil(defects.dead_and_unused), "D106")
    assert f.severity == "warning"
    assert "'dead'" in f.message
    assert f.location.line == mark_line("D106")


def test_d107_unused_parameter():
    (f,) = only(lint_stencil(defects.dead_and_unused), "D107")
    assert f.severity == "warning"
    assert "'unused'" in f.message
    assert f.location.line == mark_line("D107")


def test_healthy_carried_solver_is_clean():
    assert lint_stencil(defects.carried_solver) == []


@pytest.mark.parametrize(
    "module_name",
    [
        "xppm",
        "yppm",
        "riem_solver_c",
        "delnflux",
        "remapping",
        "d_sw",
        "c_sw",
        "fvtp2d",
        "tracer2d",
        "basic_ops",
    ],
)
def test_fv3_stencil_modules_are_clean(module_name):
    import importlib

    from repro.dsl.stencil import StencilObject

    module = importlib.import_module(f"repro.fv3.stencils.{module_name}")
    for obj in vars(module).values():
        if isinstance(obj, StencilObject):
            findings = [f for f in lint_stencil(obj) if f.severity == "error"]
            assert findings == [], f"{module_name}.{obj.name}: {findings}"
