"""Bit-exactness of every non-debug backend against the NumPy reference.

Every stencil in every FV3 stencil module runs through the debug NumPy
backend and each other registered backend on identical random inputs; the
results must be *exactly* equal — not allclose. For ``dataflow`` the
``out=`` scheduler only materializes subexpressions whose dtype is
provably float64 and only uses ``out=`` where NumPy's ufunc overlap
guarantee applies; for ``compiled`` every lowered scalar operation must
replicate the ufunc bit-for-bit (fastmath off, no FMA contraction,
NumPy's NaN/signed-zero min/max/sign semantics). Any bit difference on
any backend is a codegen bug.
"""

import importlib
import pkgutil

import numpy as np
import pytest

import repro.fv3.stencils as stencils_pkg
from repro.dsl import StencilObject
from repro.dsl.backends import available_backends
from repro.dsl.extents import k_access_bounds


def _discover():
    """All StencilObjects defined across the FV3 stencil modules."""
    found = []
    seen = set()
    for info in pkgutil.iter_modules(stencils_pkg.__path__):
        module = importlib.import_module(f"repro.fv3.stencils.{info.name}")
        for attr, obj in sorted(vars(module).items()):
            if isinstance(obj, StencilObject) and id(obj) not in seen:
                seen.add(id(obj))
                found.append(pytest.param(obj, id=f"{info.name}.{attr}"))
    return found


NI, NJ, NK = 8, 7, 6


def _synthesize(stencil):
    """Minimal valid arrays and scalars for one stencil, from its extents."""
    rng = np.random.default_rng(hash(stencil.name) % 2**32)
    defn = stencil.definition
    exts = stencil.extents.field_extents
    pad_i = max([3] + [-e.i_lo for e in exts.values()])
    pad_j = max([3] + [-e.j_lo for e in exts.values()])
    pad_k = 2
    origin = (pad_i, pad_j, pad_k)
    fields = {}
    for p in defn.field_params:
        ext = exts.get(p.name)
        axes = p.field_type.axes
        shape = []
        if "I" in axes:
            shape.append(pad_i + NI + (ext.i_hi if ext else 0) + 1)
        if "J" in axes:
            shape.append(pad_j + NJ + (ext.j_hi if ext else 0) + 1)
        if "K" in axes:
            kb = k_access_bounds(defn, p.name, NK)
            hi = kb[1] if kb else NK
            shape.append(pad_k + max(hi, NK) + 1)
        dtype = np.dtype(p.field_type.dtype)
        if dtype == np.dtype(bool):
            fields[p.name] = rng.random(shape) > 0.5
        else:
            fields[p.name] = (0.5 + rng.random(shape)).astype(dtype)
    scalars = {p.name: 0.5 + rng.random() for p in defn.scalar_params}
    return fields, scalars, origin


def _backends():
    """Every registered backend except the NumPy reference, each skipped
    with a reason when its toolchain is unavailable."""
    params = []
    for name in available_backends():
        if name == "numpy":
            continue
        marks = ()
        if name == "compiled":
            from repro.runtime import jit

            if not jit.available():
                marks = (pytest.mark.skip(
                    reason="compiled backend: no JIT engine (numba not "
                    "installed and no C compiler found)"
                ),)
        params.append(pytest.param(name, id=name, marks=marks))
    return params


@pytest.mark.parametrize("stencil", _discover())
@pytest.mark.parametrize("backend", _backends())
def test_backend_is_bit_identical(backend, stencil):
    fields, scalars, origin = _synthesize(stencil)
    domain = (NI, NJ, NK)
    ref = {n: a.copy() for n, a in fields.items()}
    got = {n: a.copy() for n, a in fields.items()}
    stencil(**ref, **scalars, origin=origin, domain=domain, backend="numpy")
    stencil(**got, **scalars, origin=origin, domain=domain,
            backend=backend)
    for name in fields:
        np.testing.assert_array_equal(
            got[name], ref[name],
            err_msg=f"{stencil.name}: field {name!r} diverged between the "
            f"debug and {backend} backends",
        )


def test_suite_covers_every_stencil_module():
    """Guard: the discovery above must see all FV3 stencil modules."""
    modules = {
        info.name for info in pkgutil.iter_modules(stencils_pkg.__path__)
    }
    covered = {id(param.values[0]) for param in _discover()}
    # every stencil object visible in any module is in the matrix (modules
    # re-export each other's stencils, so compare by object identity)
    missing = []
    for name in sorted(modules):
        module = importlib.import_module(f"repro.fv3.stencils.{name}")
        for attr, obj in vars(module).items():
            if isinstance(obj, StencilObject) and id(obj) not in covered:
                missing.append(f"{name}.{attr}")
    assert not missing, f"stencils missing from the matrix: {missing}"
