"""Halo-exchange observability: traced byte/message counters must match
the analytically computed exchange sizes.

For an ``n_halo = h`` exchange on per-rank ``(nx, ny)`` subdomains, every
rank receives, per scalar update:

- phase 0 (x-direction, interior j): ``2 * h * ny`` cells
- phase 1 (y-direction incl. corner columns): ``(nx + 2h) * 2h`` cells

so the total traffic is ``ranks * (2*h*ny + (nx + 2h)*2*h)`` cells times
the payload bytes per cell.
"""

import numpy as np
import pytest

from repro import obs
from repro.fv3.halo import HaloUpdater
from repro.fv3.partitioner import CubedSpherePartitioner

H = 3


def _cells_per_update(p, h=H):
    return p.total_ranks * (2 * h * p.ny + (p.nx + 2 * h) * 2 * h)


def _exchange_span(parent_name):
    root = obs.get_tracer().root
    return root.children[parent_name].children["halo.exchange"]


@pytest.mark.traced
def test_scalar_counters_match_analytic_sizes_2x2():
    p = CubedSpherePartitioner(npx=12, layout=2)  # 2x2 ranks per tile
    updater = HaloUpdater(p, n_halo=H)
    shape = (p.nx + 2 * H, p.ny + 2 * H)
    updater.update_scalar([np.zeros(shape) for _ in range(p.total_ranks)])

    ex = _exchange_span("halo.update_scalar")
    assert ex.count == 2  # one entry per phase
    assert ex.attrs["bytes"] == _cells_per_update(p) * 8  # float64
    # messages: one per (source rank, rotation) gather plan
    assert ex.attrs["messages"] == sum(
        len(phase) for rank_plans in updater.plans for phase in rank_plans
    )


@pytest.mark.traced
def test_scalar_counters_scale_with_k_and_dtype():
    p = CubedSpherePartitioner(npx=12, layout=2)
    updater = HaloUpdater(p, n_halo=H)
    nk = 4
    shape = (p.nx + 2 * H, p.ny + 2 * H, nk)
    updater.update_scalar(
        [np.zeros(shape, dtype=np.float32) for _ in range(p.total_ranks)]
    )
    ex = _exchange_span("halo.update_scalar")
    assert ex.attrs["bytes"] == _cells_per_update(p) * nk * 4


@pytest.mark.traced
def test_vector_update_doubles_traffic_and_counts_rotated_cells():
    p = CubedSpherePartitioner(npx=12, layout=2)
    updater = HaloUpdater(p, n_halo=H)
    shape = (p.nx + 2 * H, p.ny + 2 * H)
    u = [np.zeros(shape) for _ in range(p.total_ranks)]
    v = [np.zeros(shape) for _ in range(p.total_ranks)]
    updater.update_vector(u, v)

    vec = obs.get_tracer().root.children["halo.update_vector"]
    ex = vec.children["halo.exchange"]
    assert ex.count == 4  # two components x two phases
    assert ex.attrs["bytes"] == 2 * _cells_per_update(p) * 8

    rot = vec.children["halo.rotate_vectors"]
    expected_rotated = sum(
        plan.cells
        for rank_plans in updater.plans
        for phase in rank_plans
        for plan in phase
        if plan.rotations != 0
    )
    assert expected_rotated > 0  # cube seams exist on every layout
    assert rot.attrs["cells"] == expected_rotated


def test_counters_untouched_when_tracing_disabled():
    tracer = obs.get_tracer()
    if tracer.enabled:
        pytest.skip("tracing enabled process-wide (REPRO_TRACE=1)")
    before = dict(tracer.root.children)
    p = CubedSpherePartitioner(npx=8, layout=1)
    updater = HaloUpdater(p, n_halo=H)
    shape = (p.nx + 2 * H, p.ny + 2 * H)
    updater.update_scalar([np.zeros(shape) for _ in range(p.total_ranks)])
    assert dict(tracer.root.children) == before
