"""Validation of DSL stencil modules against plain-NumPy references
(the paper's serialized-reference unit tests, Sec. IV-A)."""

import numpy as np
import pytest

from repro.fv3 import reference
from repro.fv3.stencils.d_sw import smagorinsky_diffusion
from repro.fv3.stencils.delnflux import (
    add_flux_divergence,
    del2_flux_x,
    del2_flux_y,
)
from repro.fv3.stencils.riem_solver_c import tridiagonal_solve
from repro.fv3.stencils.xppm import xppm_flux
from repro.fv3.stencils.yppm import yppm_flux


def _rand(shape, seed=0):
    return np.random.default_rng(seed).random(shape)


def test_xppm_flux_matches_reference():
    shape = (16, 5, 3)
    q = _rand(shape)
    cr = _rand(shape, 1) - 0.5
    flux = np.zeros(shape)
    xppm_flux(q, cr, flux, origin=(3, 0, 0), domain=(shape[0] - 5, 5, 3))
    ref = reference.ppm_flux_x(q, cr)
    np.testing.assert_allclose(flux[3:-2], ref[3:-2], rtol=1e-14)


def test_yppm_flux_matches_reference():
    shape = (5, 16, 3)
    q = _rand(shape)
    cr = _rand(shape, 2) - 0.5
    flux = np.zeros(shape)
    yppm_flux(q, cr, flux, origin=(0, 3, 0), domain=(5, shape[1] - 5, 3))
    ref = reference.ppm_flux_y(q, cr)
    np.testing.assert_allclose(flux[:, 3:-2], ref[:, 3:-2], rtol=1e-14)


def test_xppm_yppm_are_transposes():
    """The duplicated modules (Sec. IV-D) must be exact transposes."""
    shape = (14, 14, 2)
    q = _rand(shape, 3)
    cr = _rand(shape, 4) - 0.5
    fx = np.zeros(shape)
    fy = np.zeros(shape)
    xppm_flux(q, cr, fx, origin=(3, 0, 0), domain=(9, 14, 2))
    yppm_flux(
        q.swapaxes(0, 1).copy(), cr.swapaxes(0, 1).copy(), fy,
        origin=(0, 3, 0), domain=(14, 9, 2),
    )
    np.testing.assert_array_equal(fx[3:-2], fy.swapaxes(0, 1)[3:-2])


def test_xppm_constant_field_gives_constant_flux():
    shape = (12, 4, 2)
    q = np.full(shape, 7.5)
    cr = _rand(shape, 5) - 0.5
    flux = np.zeros(shape)
    xppm_flux(q, cr, flux, origin=(3, 0, 0), domain=(7, 4, 2))
    np.testing.assert_allclose(flux[3:-2], 7.5)


def test_xppm_monotone_no_new_extrema():
    """With the mono limiter, reconstructed interface values stay within
    the neighboring cell means."""
    shape = (20, 3, 1)
    rng = np.random.default_rng(7)
    q = np.cumsum(rng.standard_normal(shape), axis=0)  # rough field
    cr = rng.uniform(-0.9, 0.9, shape)
    flux = np.zeros(shape)
    xppm_flux(q, cr, flux, origin=(3, 0, 0), domain=(14, 3, 1))
    # the limited reconstruction never leaves the 5-cell stencil window
    # (interfaces of the upwind cell involve q[i-3..i+1])
    for i in range(3, 17):
        window = q[i - 3 : i + 2]
        lo, hi = window.min(axis=0), window.max(axis=0)
        assert np.all(flux[i] >= lo - 1e-9) and np.all(flux[i] <= hi + 1e-9)


def test_tridiagonal_solver_matches_scipy():
    shape = (4, 4, 24)
    rng = np.random.default_rng(11)
    aa = rng.random(shape)
    cc = rng.random(shape)
    bb = 1.0 + aa + cc  # diagonally dominant (as in the Riemann solver)
    aa[..., 0] = 0.0
    cc[..., -1] = 0.0
    dd = rng.standard_normal(shape)
    w = np.zeros(shape)
    gam = np.zeros(shape)
    tridiagonal_solve(aa, bb, cc, dd, w, gam,
                      origin=(0, 0, 0), domain=shape)
    ref = reference.thomas_tridiagonal(aa, bb, cc, dd)
    np.testing.assert_allclose(w, ref, rtol=1e-11, atol=1e-12)


def test_smagorinsky_matches_reference():
    shape = (6, 6, 4)
    delpc = _rand(shape, 12) - 0.5
    vort = _rand(shape, 13) - 0.5
    smag = np.zeros(shape)
    smagorinsky_diffusion(delpc, vort, smag, 0.25,
                          origin=(0, 0, 0), domain=shape)
    np.testing.assert_allclose(
        smag, reference.smagorinsky(delpc, vort, 0.25), rtol=1e-14
    )


def test_del2_damping_matches_reference_and_smooths():
    shape2 = (12, 12)
    nk = 3
    rng = np.random.default_rng(21)
    q = rng.random(shape2 + (nk,))
    dx = 1.0 + 0.1 * rng.random(shape2)
    dy = 1.0 + 0.1 * rng.random(shape2)
    rdx, rdy = 1.0 / dx, 1.0 / dy
    rarea = 1.0 / (dx * dy)
    damp = 0.1
    fx2 = np.zeros_like(q)
    fy2 = np.zeros_like(q)
    got = q.copy()
    del2_flux_x(got, dy, rdx, fx2, damp, origin=(1, 1, 0), domain=(10, 10, nk))
    del2_flux_y(got, dx, rdy, fy2, damp, origin=(1, 1, 0), domain=(10, 10, nk))
    add_flux_divergence(got, fx2, fy2, rarea,
                        origin=(1, 1, 0), domain=(9, 9, nk))
    ref = reference.del2_diffusion_step(q, dx, dy, rdx, rdy, rarea, damp)
    np.testing.assert_allclose(got[1:-2, 1:-2], ref[1:-2, 1:-2], rtol=1e-13)
    # damping reduces variance in the interior
    assert np.var(got[2:-2, 2:-2]) < np.var(q[2:-2, 2:-2])


def test_remap_conservation_against_reference():
    """The ±1-layer DSL remap must equal the general reference remap when
    displacements are small, and conserve ∫q dp exactly."""
    from repro.fv3.stencils.remapping import (
        interface_pressures,
        remap_layer,
        target_levels,
    )

    nk = 10
    nx = ny = 4
    rng = np.random.default_rng(31)
    ptop = 100.0
    # deformed thicknesses: reference + small noise
    base = np.full(nk, 1000.0)
    delp = np.broadcast_to(base, (nx, ny, nk)).copy()
    delp *= 1.0 + 0.05 * rng.standard_normal((nx, ny, nk))
    q = rng.random((nx, ny, nk))
    bk = np.linspace(0.0, 1.0, nk + 1)

    pe1 = np.zeros((nx, ny, nk + 1))
    pe2 = np.zeros((nx, ny, nk + 1))
    q_new = np.zeros((nx, ny, nk))
    shape = (nx, ny, nk)
    interface_pressures(delp, pe1, ptop,
                        origin=(0, 0, 0), domain=(nx, ny, nk + 1))
    target_levels(pe1, pe2, bk, ptop,
                  origin=(0, 0, 0), domain=(nx, ny, nk + 1))
    remap_layer(q, q_new, pe1, pe2, origin=(0, 0, 0), domain=shape)

    for i in range(nx):
        for j in range(ny):
            ref = reference.conservative_remap_1d(
                q[i, j], pe1[i, j], pe2[i, j]
            )
            np.testing.assert_allclose(q_new[i, j], ref, rtol=1e-12)
            # exact conservation of ∫ q dp per column
            mass_src = np.sum(q[i, j] * np.diff(pe1[i, j]))
            mass_dst = np.sum(q_new[i, j] * np.diff(pe2[i, j]))
            np.testing.assert_allclose(mass_dst, mass_src, rtol=1e-12)


def test_remap_preserves_uniform_field():
    from repro.fv3.stencils.remapping import (
        interface_pressures,
        remap_layer,
        target_levels,
    )

    nk, nx, ny = 8, 3, 3
    ptop = 100.0
    rng = np.random.default_rng(41)
    delp = 500.0 * (1.0 + 0.05 * rng.standard_normal((nx, ny, nk)))
    q = np.full((nx, ny, nk), 3.25)
    pe1 = np.zeros((nx, ny, nk + 1))
    pe2 = np.zeros((nx, ny, nk + 1))
    q_new = np.zeros((nx, ny, nk))
    bk = np.linspace(0.0, 1.0, nk + 1)
    interface_pressures(delp, pe1, ptop,
                        origin=(0, 0, 0), domain=(nx, ny, nk + 1))
    target_levels(pe1, pe2, bk, ptop,
                  origin=(0, 0, 0), domain=(nx, ny, nk + 1))
    remap_layer(q, q_new, pe1, pe2, origin=(0, 0, 0), domain=(nx, ny, nk))
    np.testing.assert_allclose(q_new, 3.25, rtol=1e-13)
