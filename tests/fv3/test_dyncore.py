"""Dynamical-core integration tests: conservation, stability,
decomposition invariance, transport accuracy."""

import numpy as np
import pytest

from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore


@pytest.fixture(scope="module")
def small_core():
    cfg = DynamicalCoreConfig(
        npx=12, npz=6, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
        n_tracers=2,
    )
    return DynamicalCore(cfg)


def test_config_validation():
    with pytest.raises(ValueError):
        DynamicalCoreConfig(npx=10, layout=3)
    with pytest.raises(ValueError):
        DynamicalCoreConfig(npx=12, npz=2)
    cfg = DynamicalCoreConfig(npx=48, npz=16, layout=2, dt_atmos=300.0,
                              k_split=2, n_split=5)
    assert cfg.total_ranks == 24
    assert cfg.dt_acoustic == pytest.approx(30.0)
    assert 100 < cfg.grid_spacing_km() < 250


def test_initial_state_sane(small_core):
    s = small_core.state_summary()
    assert 30.0 < s["max_wind"] < 45.0
    assert s["max_w"] == 0.0
    # hydrostatic δz is negative
    for state in small_core.states:
        assert np.all(state.delz < 0)
        assert np.all(state.delp > 0)
        assert np.all(state.pt > 150.0)


def test_mass_conservation_over_steps(small_core):
    m0 = small_core.global_integral("delp")
    t0 = small_core.tracer_integral(0)
    for _ in range(3):
        small_core.step_dynamics()
    m1 = small_core.global_integral("delp")
    t1 = small_core.tracer_integral(0)
    assert abs(m1 - m0) / m0 < 1e-9
    assert abs(t1 - t0) / t0 < 1e-6


def test_stability_and_boundedness(small_core):
    """After several steps everything stays finite and physical."""
    for _ in range(2):
        small_core.step_dynamics()
    s = small_core.state_summary()
    assert np.isfinite(s["max_wind"]) and s["max_wind"] < 100.0
    assert s["max_w"] < 10.0
    for state in small_core.states:
        assert np.all(np.isfinite(state.pt))
        assert np.all(state.delp > 0)
        for tr in state.tracers:
            interior = tr[3:-3, 3:-3]
            assert interior.min() > -0.02  # near-monotone transport
            assert interior.max() < 1.2


def test_tracer_uniform_stays_uniform():
    """Consistency of the mass-weighted tracer transport: a spatially
    uniform tracer must remain exactly uniform."""
    cfg = DynamicalCoreConfig(
        npx=12, npz=4, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
        n_tracers=1,
    )
    core = DynamicalCore(cfg)
    for s in core.states:
        s.tracers[0][:] = 1.0
    core.step_dynamics()
    for s in core.states:
        interior = s.tracers[0][3:-3, 3:-3]
        np.testing.assert_allclose(interior, 1.0, rtol=5e-13)


def test_decomposition_invariance_one_substep():
    """layout=1 vs layout=2 give identical interiors after one acoustic
    substep (halo exchange + corner fills are layout-independent)."""
    results = {}
    for layout in (1, 2):
        cfg = DynamicalCoreConfig(
            npx=12, npz=4, layout=layout, dt_atmos=60.0, k_split=1,
            n_split=1, n_tracers=1,
        )
        core = DynamicalCore(cfg)
        core.acoustics.run(cfg.dt_acoustic, 1)
        # reassemble tile 0 interior
        p = core.partitioner
        h = core.h
        tile = np.zeros((12, 12, 4))
        for r in range(p.total_ranks):
            if p.tile_of(r) != 0:
                continue
            ox, oy = p.subdomain_origin(r)
            tile[ox : ox + p.nx, oy : oy + p.ny] = core.states[r].delp[
                h:-h, h:-h
            ]
        results[layout] = tile
    np.testing.assert_allclose(
        results[1], results[2], rtol=1e-12, atol=1e-10
    )


def test_solid_body_tracer_advection():
    """Williamson test 1: a blob advected by solid-body rotation keeps its
    mass and (approximately) its shape."""
    from repro.fv3 import constants
    from repro.fv3.initial import RankFields, reference_coordinate
    from repro.scenarios import gaussian_tracer, solid_body_rotation_winds

    cfg = DynamicalCoreConfig(
        npx=16, npz=3, layout=1, dt_atmos=900.0, k_split=1, n_split=2,
        n_tracers=1, d2_damp=0.0, smag_coeff=0.0,
    )

    def init(grid, config):
        nk = config.npz
        u, v = solid_body_rotation_winds(grid, nk, u0=30.0)
        bk, ptop = reference_coordinate(config)
        pe = ptop + bk[None, None, :] * (constants.P_REF - ptop)
        delp = np.broadcast_to(np.diff(pe, axis=-1), grid.shape + (nk,)).copy()
        p_mid = 0.5 * (pe[..., :-1] + pe[..., 1:])
        pt = np.full(grid.shape + (nk,), 280.0)
        delz = -constants.RDGAS * pt * delp / (constants.GRAV * p_mid)
        blob = gaussian_tracer(grid, nk, lon0=0.0, lat0=0.0)
        return RankFields(
            u=u, v=v, w=np.zeros_like(pt), pt=pt, delp=delp, delz=delz,
            tracers=[blob],
        )

    core = DynamicalCore(cfg, init=init)
    t0 = core.tracer_integral(0)
    peak0 = max(float(s.tracers[0][3:-3, 3:-3].max()) for s in core.states)
    # advect only (freeze the dynamics' effect on winds by taking few steps)
    for _ in range(4):
        core.step_dynamics()
    t1 = core.tracer_integral(0)
    assert abs(t1 - t0) / t0 < 1e-4
    peak1 = max(float(s.tracers[0][3:-3, 3:-3].max()) for s in core.states)
    # diffusion-limited: the peak decays but survives
    assert 0.4 * peak0 < peak1 <= peak0 * 1.001
    for s in core.states:
        assert s.tracers[0][3:-3, 3:-3].min() > -1e-2


def test_message_volume_matches_partitioner_estimate(small_core):
    comm = small_core.halo.comm
    comm.reset_log()
    small_core.halo.update_scalar([s.delp for s in small_core.states])
    measured = comm.bytes_by_rank()[0]
    est = sum(
        small_core.partitioner.boundary_message_bytes(
            n_halo=3, npz=small_core.config.npz, n_fields=1
        )
    )
    # the estimate ignores corner columns: within 40%
    assert est <= measured <= int(est * 1.4)
