"""Unit tests for the smaller substrate pieces: Quantity, corners,
communicator, grid metrics, config arithmetic."""

import numpy as np
import pytest

from repro.fv3 import constants
from repro.fv3.communicator import LocalComm
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.corners import fill_corners, rank_corners
from repro.fv3.grid import CubedSphereGrid
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.fv3.quantity import Quantity
from repro.resilience.errors import HaloTimeoutError


# ---------------------------------------------------------------------------
# Quantity
# ---------------------------------------------------------------------------

def test_quantity_views_and_metadata():
    q = Quantity.zeros("delp", 8, 8, 4, units="Pa")
    assert q.data.shape == (14, 14, 4)
    assert q.view.shape == (8, 8, 4)
    assert q.domain == (8, 8, 4)
    assert q.origin == (3, 3, 0)
    q.view[...] = 7.0
    assert q.data[3, 3, 0] == 7.0
    assert q.data[0, 0, 0] == 0.0  # halo untouched
    assert "Pa" in repr(q)


def test_quantity_2d():
    q = Quantity.zeros("area", 6, 6, units="m^2", n_halo=2)
    assert q.data.shape == (10, 10)
    assert q.dims == ("x", "y")
    assert q.origin == (2, 2)


def test_quantity_copy_is_deep():
    q = Quantity.zeros("a", 4, 4, 2)
    c = q.copy()
    c.view[...] = 1.0
    assert q.view.max() == 0.0


def test_quantity_storage_is_aligned():
    from repro.dsl.storage import is_aligned

    q = Quantity.zeros("a", 16, 16, 8)
    assert is_aligned(q.data, (3, 3, 0), 64)


# ---------------------------------------------------------------------------
# Corner fills
# ---------------------------------------------------------------------------

def test_fill_corners_x_sw_formula():
    h = 3
    n = 6
    q = np.full((n + 2 * h, n + 2 * h), np.nan)
    q[h:-h, h:-h] = 0.0
    # fill west halo with known values (as a halo exchange would)
    q[:h, h:-h] = np.arange(h)[:, None] + 10.0
    q[h:-h, :h] = np.arange(h)[None, :] + 100.0
    fill_corners(q, "x", corners=("sw",), n_halo=h)
    # dst[a, b] = q[b, 2h-1-a]: corner cells come from the west halo block
    for a in range(h):
        for b in range(h):
            assert q[a, b] == q[b, 2 * h - 1 - a]
    assert not np.isnan(q[:h, :h]).any()


def test_fill_corners_all_corners_and_directions():
    h = 3
    n = 8
    rng = np.random.default_rng(0)
    for direction in ("x", "y"):
        q = np.full((n + 2 * h, n + 2 * h), np.nan)
        q[h:-h, :] = rng.random((n, n + 2 * h))
        q[:, h:-h] = rng.random((n + 2 * h, n))
        fill_corners(q, direction, n_halo=h)
        assert not np.isnan(q).any()


def test_fill_corners_3d_broadcasts_over_k():
    h, n, nk = 3, 6, 4
    q = np.zeros((n + 2 * h, n + 2 * h, nk))
    q[:h, h:-h] = 5.0
    q[h:-h, :h] = 9.0
    fill_corners(q, "x", corners=("sw",), n_halo=h)
    # every k level filled identically
    for k in range(1, nk):
        np.testing.assert_array_equal(q[:h, :h, 0], q[:h, :h, k])


def test_rank_corners_layouts():
    p1 = CubedSpherePartitioner(12, 1)
    assert set(rank_corners(p1, 0)) == {"sw", "se", "nw", "ne"}
    p2 = CubedSpherePartitioner(12, 2)
    assert rank_corners(p2, p2.rank_at(0, 0, 0)) == ["sw"]
    assert rank_corners(p2, p2.rank_at(0, 1, 1)) == ["ne"]


# ---------------------------------------------------------------------------
# Communicator
# ---------------------------------------------------------------------------

def test_localcomm_isend_irecv_roundtrip():
    comm = LocalComm(4)
    payload = np.arange(12.0)
    comm.Isend(payload, source=0, dest=1, tag=7)
    buf = np.zeros(12)
    req = comm.Irecv(buf, source=0, dest=1, tag=7)
    assert req.test()
    req.wait()
    np.testing.assert_array_equal(buf, payload)


def test_localcomm_send_copies_buffer():
    comm = LocalComm(2)
    payload = np.ones(4)
    comm.Isend(payload, source=0, dest=1)
    payload[:] = -1.0  # mutate after send: receiver must see the original
    buf = np.zeros(4)
    comm.Irecv(buf, source=0, dest=1).wait()
    np.testing.assert_array_equal(buf, 1.0)


def test_localcomm_unmatched_recv_raises():
    comm = LocalComm(2)
    comm.Isend(np.zeros(2), source=1, dest=0, tag=9)  # unrelated pending
    buf = np.zeros(3)
    req = comm.Irecv(buf, source=0, dest=1, tag=3)
    assert not req.test()
    with pytest.raises(RuntimeError) as excinfo:
        req.wait()
    # the error names the ranks, the tag and the pending mailbox keys
    message = str(excinfo.value)
    assert "rank 0" in message and "rank 1" in message
    assert "tag 3" in message
    assert "(src=1, dst=0, tag=9)" in message


def test_localcomm_send_test_reports_delivery():
    comm = LocalComm(2)
    req = comm.Isend(np.arange(3.0), source=0, dest=1, tag=2)
    # undelivered: the message still sits in the mailbox
    assert not req.test()
    buf = np.zeros(3)
    comm.Irecv(buf, source=0, dest=1, tag=2).wait()
    assert req.test()
    # wait() completes a send only once the receiver drained the slot;
    # with nobody receiving it times out (matching test() semantics)
    req2 = comm.Isend(np.arange(3.0), source=0, dest=1, tag=4)
    with pytest.raises(HaloTimeoutError):
        req2.wait(timeout=0.05)
    comm.Irecv(buf, source=0, dest=1, tag=4).wait()
    req2.wait()  # drained: completes immediately now
    assert req2.test()
    comm.drain()


def test_localcomm_duplicate_message_rejected():
    comm = LocalComm(2)
    comm.Isend(np.zeros(2), source=0, dest=1, tag=1)
    with pytest.raises(RuntimeError, match="already in flight"):
        comm.Isend(np.zeros(2), source=0, dest=1, tag=1)


def test_localcomm_accounting():
    comm = LocalComm(3)
    comm.Isend(np.zeros(10), source=0, dest=1)
    comm.Isend(np.zeros(20), source=1, dest=2, tag=5)
    assert comm.bytes_by_rank() == {0: 80, 1: 160}
    assert sorted(comm.message_sizes()) == [80, 160]
    comm.reset_log()
    assert comm.message_sizes() == []


# ---------------------------------------------------------------------------
# Grid metrics
# ---------------------------------------------------------------------------

def test_grid_total_area_is_sphere():
    p = CubedSpherePartitioner(8, 1)
    total = sum(
        CubedSphereGrid.build(p, r, n_halo=2).global_area()
        for r in range(6)
    )
    sphere = 4.0 * np.pi * constants.RADIUS**2
    assert total == pytest.approx(sphere, rel=1e-10)


def test_grid_metric_positivity_and_symmetry():
    p = CubedSpherePartitioner(12, 1)
    g = CubedSphereGrid.build(p, 0, n_halo=3)
    assert np.all(g.area > 0)
    assert np.all(g.dx > 0) and np.all(g.dy > 0)
    # coriolis bounded by 2Ω
    assert np.max(np.abs(g.f_cor)) <= 2 * constants.OMEGA + 1e-12
    # equiangular gnomonic tiles: cell widths vary smoothly within a
    # bounded factor across the face
    h = 3
    c = g.dx[h:-h, h:-h]
    assert c.max() / c.min() < 1.6
    # mirror symmetry of the projection about the tile center line
    np.testing.assert_allclose(c, c[::-1, :], rtol=1e-12)


def test_wind_basis_roundtrip():
    p = CubedSpherePartitioner(8, 1)
    for tile_rank in range(6):
        g = CubedSphereGrid.build(p, tile_rank, n_halo=2)
        rng = np.random.default_rng(tile_rank)
        u_e = rng.standard_normal(g.shape)
        v_n = rng.standard_normal(g.shape)
        u_l, v_l = g.wind_to_local(u_e, v_n)
        u_e2, v_n2 = g.wind_to_earth(u_l, v_l)
        np.testing.assert_allclose(u_e2, u_e, atol=1e-10)
        np.testing.assert_allclose(v_n2, v_n, atol=1e-10)


# ---------------------------------------------------------------------------
# Config arithmetic
# ---------------------------------------------------------------------------

def test_config_substep_arithmetic():
    cfg = DynamicalCoreConfig(npx=48, npz=16, dt_atmos=450.0, k_split=3,
                              n_split=5)
    assert cfg.dt_remap == pytest.approx(150.0)
    assert cfg.dt_acoustic == pytest.approx(30.0)
    assert cfg.nx_rank == 48


def test_config_rejects_small_subdomains():
    with pytest.raises(ValueError, match="subdomain too small"):
        DynamicalCoreConfig(npx=8, npz=8, layout=2)
