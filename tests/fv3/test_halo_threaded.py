"""Concurrent halo exchange: the split per-rank API running on the
thread-pool executor must produce bit-identical halos to the sequential
global path, stay deadlock-free under shuffled/jittered post order, and
keep the full diagnostic payload on timeouts."""

import random
import time

import numpy as np
import pytest

from repro import resilience
from repro.fv3.halo import HaloUpdater
from repro.fv3.partitioner import CubedSpherePartitioner
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan
from repro.resilience.errors import HaloTimeoutError
from repro.runtime.ranks import RankExecutor

H = 3


def _setup(layout=1, nk=2, seed=0):
    part = CubedSpherePartitioner(12, layout)
    updater = HaloUpdater(part, n_halo=H)
    shape = (part.nx + 2 * H, part.ny + 2 * H)
    if nk:
        shape += (nk,)
    fields = [
        np.random.default_rng(seed + r).random(shape)
        for r in range(part.total_ranks)
    ]
    return part, updater, fields


def _copies(fields):
    return [f.copy() for f in fields]


@pytest.fixture
def executor():
    ex = RankExecutor(6)
    try:
        yield ex
    finally:
        ex.shutdown()


def test_threaded_scalar_bit_identical(executor):
    part, updater, fields = _setup()
    seq = _copies(fields)
    HaloUpdater(part, n_halo=H).update_scalar(seq)

    executor.run(
        lambda r: updater.finish_scalar(updater.start_scalar(fields, r)),
        part.total_ranks,
    )
    for a, b in zip(fields, seq):
        np.testing.assert_array_equal(a, b)
    assert updater.comm.pending() == []


def test_threaded_vector_bit_identical(executor):
    part, updater, fields = _setup(seed=10)
    _, _, vfields = _setup(seed=20)
    us, vs = _copies(fields), _copies(vfields)
    HaloUpdater(part, n_halo=H).update_vector(us, vs)

    executor.run(
        lambda r: updater.finish_vector(
            updater.start_vector(fields, vfields, r)
        ),
        part.total_ranks,
    )
    for a, b in zip(fields, us):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(vfields, vs):
        np.testing.assert_array_equal(a, b)


def test_threaded_fused_multifield_matches_per_field_updates(executor):
    part, updater, f1 = _setup(seed=1)
    _, _, f2 = _setup(seed=2)
    _, _, f3 = _setup(seed=3)
    ref = [_copies(f) for f in (f1, f2, f3)]
    seq_updater = HaloUpdater(part, n_halo=H)
    for f in ref:
        seq_updater.update_scalar(f)

    executor.run(
        lambda r: updater.finish_scalars(
            updater.start_scalars((f1, f2, f3), r)
        ),
        part.total_ranks,
    )
    for got, want in zip((f1, f2, f3), ref):
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)


def test_repeated_rounds_stay_identical_and_leak_free(executor):
    """Back-to-back threaded exchanges on the same fields must not
    collide on reused (source, dest, tag) keys across rounds."""
    part, updater, fields = _setup(seed=7)
    seq = _copies(fields)
    seq_updater = HaloUpdater(part, n_halo=H)
    rng = np.random.default_rng(42)
    for round_ in range(3):
        bump = rng.random(fields[0].shape)
        for f, s in zip(fields, seq):
            f += bump
            s += bump
        seq_updater.update_scalar(seq)
        executor.run(
            lambda r: updater.finish_scalar(
                updater.start_scalar(fields, r)
            ),
            part.total_ranks,
        )
        for a, b in zip(fields, seq):
            np.testing.assert_array_equal(a, b)
    assert updater.comm.pending() == []


def test_shuffled_post_order_is_deadlock_free(executor):
    """Rank bodies starting in arbitrary order with jittered delays must
    still complete (any stall would surface as HaloTimeoutError within
    the comm timeout, not hang)."""
    part, updater, fields = _setup(seed=5)
    seq = _copies(fields)
    # the exchange is not idempotent at cube corners (phase-1 packs read
    # pre-phase-1 neighbour halos), so the reference must be exchanged in
    # lockstep with the threaded fields, once per trial
    seq_updater = HaloUpdater(part, n_halo=H)

    for trial in range(3):
        seq_updater.update_scalar(seq)
        rng = random.Random(trial)
        order = list(range(part.total_ranks))
        rng.shuffle(order)
        delays = [rng.uniform(0.0, 0.01) for _ in order]

        def body(i):
            rank = order[i]
            time.sleep(delays[i])
            updater.finish_scalar(updater.start_scalar(fields, rank))

        executor.run(body, part.total_ranks)
        for a, b in zip(fields, seq):
            np.testing.assert_array_equal(a, b)


def test_small_worker_cap_cannot_deadlock():
    """workers < ranks must still complete: blocked waits hand their
    compute slot back, so all six ranks make progress on two slots."""
    part, updater, fields = _setup(seed=9)
    seq = _copies(fields)
    HaloUpdater(part, n_halo=H).update_scalar(seq)
    ex = RankExecutor(2)
    try:
        ex.run(
            lambda r: updater.finish_scalar(updater.start_scalar(fields, r)),
            part.total_ranks,
        )
    finally:
        ex.shutdown()
    for a, b in zip(fields, seq):
        np.testing.assert_array_equal(a, b)


def test_threaded_timeout_keeps_diagnostics(executor):
    """A dropped message under threads still raises HaloTimeoutError
    naming rank, tag, phase and the pending mailbox keys."""
    part, updater, fields = _setup(seed=11)
    previous = chaos.set_plan(ChaosPlan.from_spec("halo.drop@1"))
    try:
        with pytest.raises(HaloTimeoutError) as excinfo:
            executor.run(
                lambda r: updater.finish_scalar(
                    updater.start_scalar(fields, r)
                ),
                part.total_ranks,
            )
    finally:
        chaos.set_plan(previous)
        resilience.reset()
    err = excinfo.value
    assert 0 <= err.source < part.total_ranks
    assert 0 <= err.dest < part.total_ranks
    assert err.phase in (0, 1)
    assert isinstance(err.pending, list)
    text = str(err)
    assert f"rank {err.source}" in text
    assert f"tag {err.tag}" in text
    assert f"phase {err.phase}" in text
    # the aborted exchange is drained by the driver, not the rank thread
    updater.comm.drain()
    assert updater.comm.pending() == []
    # a clean retry goes through
    executor.run(
        lambda r: updater.finish_scalar(updater.start_scalar(fields, r)),
        part.total_ranks,
    )


def test_executor_env_configuration(monkeypatch):
    monkeypatch.setenv("REPRO_RANKS", "6")
    ex = RankExecutor()
    assert ex.workers == 6 and ex.parallel
    monkeypatch.setenv("REPRO_RANKS", "1")
    assert not RankExecutor().parallel


def test_timeout_names_the_owning_tag_slot(executor):
    """A timeout inside a split exchange on offset tag slots carries the
    exchange's fslot_base, so the runtime error cross-references the
    static C3xx protocol findings (which identify exchanges by the same
    slot base)."""
    part, updater, fields = _setup(seed=13)
    previous = chaos.set_plan(ChaosPlan.from_spec("halo.drop@1"))
    try:
        with pytest.raises(HaloTimeoutError) as excinfo:
            executor.run(
                lambda r: updater.finish_scalars(
                    updater.start_scalars((fields,), r, fslot_base=2)
                ),
                part.total_ranks,
            )
    finally:
        chaos.set_plan(previous)
        resilience.reset()
    err = excinfo.value
    assert err.fslot_base == 2
    assert "fslot_base 2" in str(err)
    updater.comm.drain()
    assert updater.comm.pending() == []


def test_atomic_path_timeout_reports_slot_zero():
    part, updater, fields = _setup(seed=17)
    previous = chaos.set_plan(ChaosPlan.from_spec("halo.drop@1"))
    try:
        with pytest.raises(HaloTimeoutError) as excinfo:
            updater.update_scalar(fields)
    finally:
        chaos.set_plan(previous)
        resilience.reset()
    assert excinfo.value.fslot_base == 0
    assert "fslot_base 0" in str(excinfo.value)
    updater.comm.drain()
