"""Bit-identity of halo exchange across all 12 cube edges (PR 10).

The 6-tile (layout=1) decomposition exercises every cube-edge seam:
each of the 24 (tile, edge) directed crossings maps — via the
geometric connectivity table — onto one of the 12 undirected cube
edges, several of them with a nonzero frame rotation. These tests pin
down the exchange as *exact value transport*: every edge-halo cell
must hold, bit for bit, the mapped source cell's value (scalars), or
the mapped source vector rotated by the seam's quarter-turn matrix
(vectors). The expectation is computed independently of the gather
plans, straight from ``_tile_edge_map`` and ``_ROTATIONS``.
"""

import numpy as np
import pytest

from repro.fv3.halo import HaloUpdater, _tile_edge_map
from repro.fv3.partitioner import (
    CONNECTIVITY,
    EDGES,
    _ROTATIONS,
    CubedSpherePartitioner,
)

H = 3
NPX = 8


def _edge_halo_cells(npx):
    """(gi, gj) of every halo cell with exactly one axis out of range —
    the edge (non-corner) halo bands on all four sides."""
    cells = []
    for g in range(npx):
        for d in range(1, H + 1):
            cells.append((g, -d))        # S band
            cells.append((g, npx - 1 + d))  # N band
            cells.append((-d, g))        # W band
            cells.append((npx - 1 + d, g))  # E band
    return cells


def _crossing_edge(npx, gi, gj):
    if gj >= npx:
        return "N"
    if gj < 0:
        return "S"
    if gi >= npx:
        return "E"
    return "W"


def _scalar_value(tile, gi, gj):
    # exactly representable float per global cell
    return float(tile * 10000 + gi * 100 + gj)


def _build_fields(p, value_fn):
    fields = []
    for rank in range(p.total_ranks):
        f = np.full((p.nx + 2 * H, p.ny + 2 * H), np.nan)
        tile = p.tile_of(rank)
        for gi in range(p.nx):
            for gj in range(p.ny):
                f[gi + H, gj + H] = value_fn(tile, gi, gj)
        fields.append(f)
    return fields


def test_connectivity_covers_all_twelve_cube_edges():
    """The 24 directed (tile, edge) crossings pair up into exactly 12
    undirected cube edges, and the seam table is involutive."""
    seams = set()
    for tile in range(6):
        for edge in EDGES:
            conn = CONNECTIVITY[(tile, edge)]
            seams.add(frozenset([(tile, edge), (conn.tile, conn.edge)]))
            back = CONNECTIVITY[(conn.tile, conn.edge)]
            assert (back.tile, back.edge) == (tile, edge)
    assert len(seams) == 12
    # the cube cannot be laid out without rotated seams
    assert any(
        CONNECTIVITY[(t, e)].rotations != 0
        for t in range(6) for e in EDGES
    )


def test_scalar_edge_halos_bit_identical_on_all_cube_edges():
    """Every edge-halo cell equals — bit for bit — the interior value of
    the cell it maps to through the adjoining face, on all 24 directed
    crossings."""
    p = CubedSpherePartitioner(npx=NPX, layout=1)
    fields = _build_fields(p, _scalar_value)
    HaloUpdater(p, n_halo=H).update_scalar(fields)
    crossings = set()
    for rank in range(p.total_ranks):
        tile = p.tile_of(rank)
        for gi, gj in _edge_halo_cells(NPX):
            tile2, gi2, gj2, _rot = _tile_edge_map(NPX, tile, gi, gj)
            expected = _scalar_value(tile2, gi2, gj2)
            got = fields[rank][gi + H, gj + H]
            assert got == expected, (
                f"tile {tile} halo cell ({gi},{gj}) -> "
                f"tile {tile2} ({gi2},{gj2}): {got!r} != {expected!r}"
            )
            crossings.add((tile, _crossing_edge(NPX, gi, gj)))
    assert len(crossings) == 24  # all directed crossings exercised


def test_vector_edge_halos_rotated_bit_identically():
    """Vector halos are the mapped source vector transformed by the
    seam's quarter-turn matrix — exact, because the matrix entries are
    0/±1. Covers every directed crossing, including all nonzero
    rotations."""
    p = CubedSpherePartitioner(npx=NPX, layout=1)

    def uval(tile, gi, gj):
        return float(tile * 10000 + gi * 100 + gj) + 0.25

    def vval(tile, gi, gj):
        return -float(tile * 10000 + gj * 100 + gi) - 0.5

    u = _build_fields(p, uval)
    v = _build_fields(p, vval)
    HaloUpdater(p, n_halo=H).update_vector(u, v)
    rotated_crossings = set()
    for rank in range(p.total_ranks):
        tile = p.tile_of(rank)
        for gi, gj in _edge_halo_cells(NPX):
            tile2, gi2, gj2, rot = _tile_edge_map(NPX, tile, gi, gj)
            m = _ROTATIONS[rot % 4]
            us, vs = uval(tile2, gi2, gj2), vval(tile2, gi2, gj2)
            eu = m[0, 0] * us + m[0, 1] * vs
            ev = m[1, 0] * us + m[1, 1] * vs
            assert u[rank][gi + H, gj + H] == eu, (
                f"u at tile {tile} ({gi},{gj}) from tile {tile2} "
                f"({gi2},{gj2}) rot {rot}"
            )
            assert v[rank][gi + H, gj + H] == ev, (
                f"v at tile {tile} ({gi},{gj}) from tile {tile2} "
                f"({gi2},{gj2}) rot {rot}"
            )
            if rot % 4:
                rotated_crossings.add(
                    (tile, _crossing_edge(NPX, gi, gj))
                )
    # the nontrivial orientation transforms were genuinely exercised
    assert rotated_crossings


@pytest.mark.parametrize("layout", [1, 2])
def test_corner_halo_cells_filled_and_layout_invariant(layout):
    """Two-phase exchange fills the corner halo columns too; per-global-
    cell values at cube seams do not depend on the rank layout."""
    npx = 8
    p = CubedSpherePartitioner(npx=npx, layout=layout)
    fields = []
    for rank in range(p.total_ranks):
        ox, oy = p.subdomain_origin(rank)
        tile = p.tile_of(rank)
        f = np.full((p.nx + 2 * H, p.ny + 2 * H), np.nan)
        for i in range(p.nx):
            for j in range(p.ny):
                f[i + H, j + H] = _scalar_value(tile, ox + i, oy + j)
        fields.append(f)
    HaloUpdater(p, n_halo=H).update_scalar(fields)
    for rank in range(p.total_ranks):
        tile = p.tile_of(rank)
        got = fields[rank]
        # edge bands (one axis out) must be exact on every rank
        ox, oy = p.subdomain_origin(rank)
        for li in range(-H, p.nx + H):
            for lj in range(-H, p.ny + H):
                gi, gj = ox + li, oy + lj
                out_i = not (0 <= gi < npx)
                out_j = not (0 <= gj < npx)
                if out_i == out_j:
                    continue  # interior or corner column
                t2, gi2, gj2, _rot = _tile_edge_map(npx, tile, gi, gj)
                assert got[li + H, lj + H] == _scalar_value(t2, gi2, gj2)
