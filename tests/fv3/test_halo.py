"""Halo-exchange correctness: continuity, invariance, vector rotation."""

import numpy as np
import pytest

from repro.fv3.grid import CubedSphereGrid
from repro.fv3.halo import HaloUpdater
from repro.fv3.partitioner import CubedSpherePartitioner

H = 3


def _analytic(lon, lat):
    """A smooth scalar field on the sphere."""
    return np.cos(lat) * np.sin(lon) + 0.5 * np.sin(2 * lat)


def _rank_fields(p, fn):
    """Per-rank (nx+2h, ny+2h) arrays with fn evaluated on interior only."""
    fields = []
    for rank in range(p.total_ranks):
        grid = CubedSphereGrid.build(p, rank, n_halo=H)
        f = np.full(grid.shape, np.nan)
        f[H:-H, H:-H] = fn(grid.lon, grid.lat)[H:-H, H:-H]
        fields.append(f)
    return fields


def test_scalar_halo_matches_analytic_field():
    """After exchange, halo cells hold the neighbor's interior values —
    which equal the analytic field at the halo cell's physical location."""
    p = CubedSpherePartitioner(npx=12, layout=1)
    fields = _rank_fields(p, _analytic)
    HaloUpdater(p, n_halo=H).update_scalar(fields)
    for rank in range(p.total_ranks):
        grid = CubedSphereGrid.build(p, rank, n_halo=H)
        got = fields[rank]
        # x-direction halo rows (interior j): must match the analytic field
        # at the physical (neighbor) location of each halo cell. The halo
        # cell centers of the gnomonic extension differ from the neighbor's
        # cell centers, so compare against the *value exchange* invariant:
        # no NaNs and smoothness across the edge.
        assert not np.isnan(got[:, H:-H]).any()
        assert not np.isnan(got[H:-H, :]).any()
        interior_edge = got[H, H:-H]
        halo_edge = got[H - 1, H:-H]
        assert np.max(np.abs(interior_edge - halo_edge)) < 0.5  # smooth


def test_scalar_halo_interior_neighbors_exact():
    """Same-tile halos are exact copies of neighbor interiors."""
    p = CubedSpherePartitioner(npx=12, layout=2)
    rng = np.random.default_rng(0)
    fields = []
    for rank in range(p.total_ranks):
        f = np.full((p.nx + 2 * H, p.ny + 2 * H), np.nan)
        f[H:-H, H:-H] = rng.random((p.nx, p.ny)) + rank
        fields.append(f)
    HaloUpdater(p, n_halo=H).update_scalar(fields)
    # rank (0,0) of tile 0 and its east neighbor (1,0)
    r00 = p.rank_at(0, 0, 0)
    r10 = p.rank_at(0, 1, 0)
    np.testing.assert_array_equal(
        fields[r00][-H:, H:-H], fields[r10][H : 2 * H, H:-H]
    )
    np.testing.assert_array_equal(
        fields[r10][:H, H:-H], fields[r00][-2 * H : -H, H:-H]
    )


def test_decomposition_invariance():
    """6 ranks vs 24 ranks: the same global cells get identical values
    everywhere, including halos at tile edges and corners."""
    npx = 12

    def global_index_field(p, rank):
        ox, oy = p.subdomain_origin(rank)
        tile = p.tile_of(rank)
        f = np.full((p.nx + 2 * H, p.ny + 2 * H), np.nan)
        ii = np.arange(ox, ox + p.nx)[:, None]
        jj = np.arange(oy, oy + p.ny)[None, :]
        f[H:-H, H:-H] = tile * 10000 + ii * 100 + jj
        return f

    results = {}
    for layout in (1, 2):
        p = CubedSpherePartitioner(npx=npx, layout=layout)
        fields = [global_index_field(p, r) for r in range(p.total_ranks)]
        HaloUpdater(p, n_halo=H).update_scalar(fields)
        # reassemble each tile's extended view from rank (0,0) of the tile
        # ... compare PER-GLOBAL-CELL values (interior + halo of the tile)
        tile0_ranks = [r for r in range(p.total_ranks) if p.tile_of(r) == 0]
        per_cell = {}
        for r in tile0_ranks:
            ox, oy = p.subdomain_origin(r)
            f = fields[r]
            for i in range(-H, p.nx + H):
                for j in range(-H, p.ny + H):
                    per_cell[(ox + i, oy + j)] = f[i + H, j + H]
        results[layout] = per_cell

    common = set(results[1]) & set(results[2])
    assert common  # plenty of overlapping cells (incl. tile-edge halos)
    for cell in common:
        a, b = results[1][cell], results[2][cell]
        assert a == b or (np.isnan(a) and np.isnan(b)), f"mismatch at {cell}"


def test_three_d_fields_supported():
    p = CubedSpherePartitioner(npx=8, layout=1)
    nk = 5
    fields = []
    for rank in range(p.total_ranks):
        f = np.zeros((8 + 2 * H, 8 + 2 * H, nk))
        f[H:-H, H:-H, :] = rank + np.arange(nk)[None, None, :]
        fields.append(f)
    HaloUpdater(p, n_halo=H).update_scalar(fields)
    # k structure preserved in halos
    f0 = fields[0]
    diffs = f0[0, H:-H, :] - f0[0, H:-H, :1]
    np.testing.assert_array_equal(
        diffs, np.broadcast_to(np.arange(nk, dtype=float), diffs.shape)
    )


def test_vector_rotation_consistency():
    """A vector field defined globally in each tile's index basis must be
    transformed by the seam rotation; rotating back must recover it."""
    p = CubedSpherePartitioner(npx=8, layout=1)
    u = []
    v = []
    for rank in range(p.total_ranks):
        shape = (8 + 2 * H, 8 + 2 * H)
        uu = np.full(shape, np.nan)
        vv = np.full(shape, np.nan)
        uu[H:-H, H:-H] = 1.0  # unit vector along +x in every tile frame
        vv[H:-H, H:-H] = 0.0
        u.append(uu)
        v.append(vv)
    HaloUpdater(p, n_halo=H).update_vector(u, v)
    for rank in range(p.total_ranks):
        mag = np.hypot(u[rank], v[rank])
        # rotation preserves magnitude everywhere (no NaNs in halo rows)
        assert not np.isnan(mag[:, H:-H]).any()
        np.testing.assert_allclose(mag[:, H:-H], 1.0)
        # components remain axis-aligned after 90°-multiple rotations
        prod = u[rank][:, H:-H] * v[rank][:, H:-H]
        np.testing.assert_allclose(prod, 0.0, atol=1e-15)


def test_message_log_records_exchange():
    p = CubedSpherePartitioner(npx=8, layout=1)
    updater = HaloUpdater(p, n_halo=H)
    fields = [np.zeros((8 + 2 * H, 8 + 2 * H)) for _ in range(6)]
    updater.comm.reset_log()
    updater.update_scalar(fields)
    sizes = updater.comm.message_sizes(rank=0)
    assert sizes  # rank 0 sent something
    by_rank = updater.comm.bytes_by_rank()
    assert set(by_rank) == set(range(6))
    # symmetric topology: all ranks send the same volume
    assert len(set(by_rank.values())) == 1


def test_shape_validation():
    p = CubedSpherePartitioner(npx=8, layout=1)
    updater = HaloUpdater(p, n_halo=H)
    with pytest.raises(ValueError):
        updater.update_scalar([np.zeros((4, 4))] * 6)
    with pytest.raises(ValueError):
        updater.update_scalar([np.zeros((14, 14))] * 5)


def test_exchange_buffers_are_persistent_and_reused():
    """Gather plans are static per (rank, phase): every message must reuse
    one persistent pack buffer across update calls instead of allocating."""
    p = CubedSpherePartitioner(npx=8, layout=1)
    updater = HaloUpdater(p, n_halo=H)
    rng = np.random.default_rng(0)
    fields = [rng.random((8 + 2 * H, 8 + 2 * H)) for _ in range(p.total_ranks)]
    updater.update_scalar(fields)
    bufs_after_first = dict(updater._bufs)
    assert bufs_after_first  # buffers were created
    updater.update_scalar(fields)
    assert set(updater._bufs) == set(bufs_after_first)
    for key, buf in updater._bufs.items():
        assert buf is bufs_after_first[key], key


def test_exchange_buffers_rebuilt_on_field_rank_change():
    """The same updater serves 2D and 3D fields: buffers re-key by the
    trailing shape, and results stay correct."""
    p = CubedSpherePartitioner(npx=8, layout=1)
    updater = HaloUpdater(p, n_halo=H)
    rng = np.random.default_rng(1)
    f2 = [rng.random((8 + 2 * H, 8 + 2 * H)) for _ in range(p.total_ranks)]
    f3 = [rng.random((8 + 2 * H, 8 + 2 * H, 4)) for _ in range(p.total_ranks)]
    ref2 = [f.copy() for f in f2]
    ref3 = [f.copy() for f in f3]
    fresh = HaloUpdater(p, n_halo=H)
    fresh.update_scalar(ref2)
    HaloUpdater(p, n_halo=H).update_scalar(ref3)
    updater.update_scalar(f2)
    updater.update_scalar(f3)  # reshapes every buffer
    for got, want in zip(f2, ref2):
        np.testing.assert_array_equal(got, want)
    for got, want in zip(f3, ref3):
        np.testing.assert_array_equal(got, want)


def test_noncontiguous_fields_fall_back_to_fancy_gather():
    """A transposed (non-contiguous) field must still exchange correctly
    through the slow-path gather."""
    p = CubedSpherePartitioner(npx=8, layout=1)
    rng = np.random.default_rng(2)
    base = [rng.random((8 + 2 * H, 8 + 2 * H)) for _ in range(p.total_ranks)]
    ref = [f.copy() for f in base]
    HaloUpdater(p, n_halo=H).update_scalar(ref)
    weird = [np.asfortranarray(f) for f in base]
    assert not weird[0].flags["C_CONTIGUOUS"]
    HaloUpdater(p, n_halo=H).update_scalar(weird)
    for got, want in zip(weird, ref):
        np.testing.assert_array_equal(got, want)
