"""Cube topology and partitioner tests."""

import numpy as np
import pytest

from repro.fv3 import constants
from repro.fv3.partitioner import (
    CONNECTIVITY,
    EDGES,
    FACES,
    CubedSpherePartitioner,
    _edge_endpoints,
)


def test_face_frames_right_handed():
    for n, x, y in FACES:
        assert np.array_equal(np.cross(x, y), np.array(n))


def test_every_edge_has_neighbor():
    assert len(CONNECTIVITY) == 6 * 4
    for (tile, edge), conn in CONNECTIVITY.items():
        assert conn.tile != tile
        assert conn.edge in EDGES


def test_connectivity_symmetric():
    """If tile A's edge E touches tile B's edge E', then B's E' touches A."""
    for (tile, edge), conn in CONNECTIVITY.items():
        back = CONNECTIVITY[(conn.tile, conn.edge)]
        assert back.tile == tile
        assert back.edge == edge
        assert back.reversed == conn.reversed
        # rotations compose to identity
        assert (back.rotations + conn.rotations) % 4 == 0


def test_each_tile_touches_four_distinct_tiles():
    for tile in range(constants.N_TILES):
        neighbors = {CONNECTIVITY[(tile, e)].tile for e in EDGES}
        assert len(neighbors) == 4
        assert tile not in neighbors


def test_edge_endpoints_shared():
    for (tile, edge), conn in CONNECTIVITY.items():
        mine = set(_edge_endpoints(tile, edge))
        theirs = set(_edge_endpoints(conn.tile, conn.edge))
        assert mine == theirs


def test_rank_addressing_roundtrip():
    p = CubedSpherePartitioner(npx=12, layout=2)
    assert p.total_ranks == 24
    for rank in range(p.total_ranks):
        tile = p.tile_of(rank)
        px, py = p.subtile_of(rank)
        assert p.rank_at(tile, px, py) == rank


def test_subdomain_origins_tile_cover():
    p = CubedSpherePartitioner(npx=12, layout=2)
    seen = set()
    for rank in range(4):  # ranks of tile 0
        ox, oy = p.subdomain_origin(rank)
        for i in range(p.nx):
            for j in range(p.ny):
                seen.add((ox + i, oy + j))
    assert seen == {(i, j) for i in range(12) for j in range(12)}


def test_same_tile_neighbors_no_rotation():
    p = CubedSpherePartitioner(npx=12, layout=2)
    rank = p.rank_at(0, 0, 0)
    east = p.edge_neighbor(rank, "E")
    assert east.rank == p.rank_at(0, 1, 0)
    assert east.rotations == 0 and not east.reversed


def test_cross_tile_neighbor_consistency():
    """Crossing an edge and crossing back lands on the original rank."""
    for layout in (1, 2):
        p = CubedSpherePartitioner(npx=12, layout=layout)
        for rank in range(p.total_ranks):
            for edge in EDGES:
                n = p.edge_neighbor(rank, edge)
                back = p.edge_neighbor(n.rank, n.neighbor_edge)
                assert back.rank == rank, (
                    f"rank {rank} edge {edge} -> {n.rank} does not return"
                )


def test_bounds_edge_ownership():
    p = CubedSpherePartitioner(npx=12, layout=2)
    b = p.bounds(p.rank_at(0, 0, 0))
    assert b.origin == (0, 0)
    assert b.tile_shape == (12, 12)
    b2 = p.bounds(p.rank_at(0, 1, 1))
    assert b2.origin == (6, 6)
    assert p.on_tile_edge(p.rank_at(0, 0, 0), "W")
    assert not p.on_tile_edge(p.rank_at(0, 1, 1), "W")


def test_invalid_layout_rejected():
    with pytest.raises(ValueError):
        CubedSpherePartitioner(npx=10, layout=3)
