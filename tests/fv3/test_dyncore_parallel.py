"""SPMD dyncore stepping: the thread-per-rank executor with overlapped
halo exchange must stay bit-identical to the sequential driver, under
any worker cap, with overlap disabled, and under chaos-driven rollback
— and its overlap metrics must surface in the obs report."""

import numpy as np
import pytest

from repro import resilience
from repro.fv3.config import DynamicalCoreConfig
from repro.fv3.dyncore import DynamicalCore
from repro.obs.report import report
from repro.resilience import GuardConfig, ResilienceConfig, chaos
from repro.resilience.chaos import ChaosPlan
from repro.runtime import ranks

CFG = DynamicalCoreConfig(
    npx=12, npz=3, layout=1, dt_atmos=120.0, k_split=1, n_split=2,
    n_tracers=1,
)

FIELDS = ("u", "v", "w", "pt", "delp", "delz")


def _run(workers, steps=2, res=None):
    ex = ranks.RankExecutor(workers)
    try:
        core = DynamicalCore(CFG, resilience=res, executor=ex)
        for _ in range(steps):
            core.step_dynamics()
    finally:
        ex.shutdown()
    return core


def _assert_bit_identical(a, b):
    for r, (sa, sb) in enumerate(zip(a.states, b.states)):
        for f in FIELDS:
            np.testing.assert_array_equal(
                getattr(sa, f), getattr(sb, f), err_msg=f"rank {r} {f}"
            )
        for t, (ta, tb) in enumerate(zip(sa.tracers, sb.tracers)):
            np.testing.assert_array_equal(
                ta, tb, err_msg=f"rank {r} tracer {t}"
            )


@pytest.fixture(scope="module")
def sequential_run():
    return _run(workers=1)


def test_threaded_step_bit_identical(sequential_run):
    threaded = _run(workers=6)
    _assert_bit_identical(threaded, sequential_run)
    assert threaded.halo.comm.pending() == []


def test_small_worker_cap_bit_identical(sequential_run):
    """Two compute slots for six ranks: blocked halo waits hand their
    slot back, so the run completes and matches exactly."""
    capped = _run(workers=2)
    _assert_bit_identical(capped, sequential_run)


def test_overlap_disabled_bit_identical(sequential_run, monkeypatch):
    """REPRO_OVERLAP=0 serializes finish_vector before riemann; the
    answer must not depend on the overlap window."""
    monkeypatch.setenv("REPRO_OVERLAP", "0")
    threaded = _run(workers=6)
    _assert_bit_identical(threaded, sequential_run)


def test_threaded_rollback_recovers_bit_identical():
    """A dropped halo message under threads trips the timeout, the
    driver drains and rolls back, and the retried step finishes
    bit-identical to a fault-free threaded run."""
    clean = _run(workers=6)
    plan = ChaosPlan.from_spec("seed=3;halo.drop@40")
    previous = chaos.set_plan(plan)
    try:
        faulty = _run(
            workers=6,
            res=ResilienceConfig(
                guard=GuardConfig(policy="rollback"), max_retries=4
            ),
        )
        counters = resilience.summary()["counters"]
        assert plan.counts() == {"halo.drop": 1}
        assert counters["halo_timeouts"] >= 1
        assert counters["rollbacks"] >= 1
    finally:
        chaos.set_plan(previous)
        resilience.reset()
    _assert_bit_identical(faulty, clean)
    assert faulty.halo.comm.pending() == []


@pytest.mark.traced
def test_parallel_metrics_surface_in_report():
    ranks.reset_metrics()
    _run(workers=6, steps=1)
    summary = ranks.summary()
    assert summary["workers"] >= 6
    assert summary["sections"] > 0
    assert summary["tasks"] >= 6 * summary["sections"]
    assert summary["exchanges"] > 0
    assert summary["hidden_seconds"] >= 0.0
    eff = summary["overlap_efficiency"]
    assert eff is None or 0.0 <= eff <= 1.0
    text = report()
    assert "rank executor:" in text
    assert "halo overlap:" in text


def test_sequential_executor_records_no_sections():
    ranks.reset_metrics()
    _run(workers=1, steps=1)
    assert ranks.summary()["sections"] == 0
